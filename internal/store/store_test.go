package store

import (
	"fmt"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"

	"locshort/internal/cli"
	"locshort/internal/graph"
	"locshort/internal/jobs"
	"locshort/internal/partition"
	"locshort/internal/service"
	"locshort/internal/shortcut"
)

// testOpts skips fsync so the suite is not bound by disk flush latency.
var testOpts = Options{NoSync: true}

func mustOpen(t *testing.T, dir string) *Store {
	t.Helper()
	s, err := Open(dir, testOpts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// buildFixture constructs a (graph, partition, shortcut) triple from specs.
func buildFixture(t *testing.T, spec, partSpec string, seed int64) (
	*graph.Graph, *partition.Partition, *shortcut.Result) {
	t.Helper()
	g, _, err := cli.ParseGraph(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cli.ParsePartition(g, partSpec, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := shortcut.Build(g, p, shortcut.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g, p, res
}

// canonicalH returns the per-part H sets in canonical edge order, indexed
// by canonical part rank — the representation-independent identity of a
// shortcut.
func canonicalH(s *shortcut.Shortcut) [][]int32 {
	perm := newEdgePerm(s.G)
	rank := partCanonOrder(s.Parts)
	out := make([][]int32, len(s.H))
	for i, h := range s.H {
		if !s.Covered[i] {
			continue
		}
		c := make([]int32, len(h))
		for j, id := range h {
			c[j] = perm.toCanon[id]
		}
		sort.Slice(c, func(a, b int) bool { return c[a] < c[b] })
		out[rank[i]] = c
	}
	return out
}

func sameCanonicalH(a, b [][]int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}

// TestGraphRoundTripFamilies persists one graph per family and checks the
// decoded representative fingerprints back to the same key, across a
// reopen.
func TestGraphRoundTripFamilies(t *testing.T) {
	specs := []string{
		"grid:6x7", "torus:5x5", "wheel:40", "cycle:30", "path:17",
		"complete:8", "ktree:60,3", "random:50,120", "lb:5,12",
	}
	dir := t.TempDir()
	s := mustOpen(t, dir)
	want := make(map[service.Fingerprint]string)
	for _, spec := range specs {
		g, _, err := cli.ParseGraph(spec, 1)
		if err != nil {
			t.Fatal(err)
		}
		fp := service.FingerprintGraph(g)
		if err := s.PutGraph(fp, g); err != nil {
			t.Fatalf("PutGraph(%s): %v", spec, err)
		}
		want[fp] = spec
	}
	// A weighted multigraph with parallel edges exercises the canonical
	// tie handling.
	mg := graph.New(3)
	mg.AddWeightedEdge(0, 1, 2.5)
	mg.AddWeightedEdge(1, 0, 2.5) // parallel, same weight after normalization
	mg.AddWeightedEdge(1, 2, 0.25)
	mfp := service.FingerprintGraph(mg)
	if err := s.PutGraph(mfp, mg); err != nil {
		t.Fatal(err)
	}
	want[mfp] = "multigraph"
	s.Close()

	s = mustOpen(t, dir)
	defer s.Close()
	got := 0
	err := s.EachGraph(func(fp service.Fingerprint, g *graph.Graph) error {
		spec, ok := want[fp]
		if !ok {
			return fmt.Errorf("unexpected graph %s", fp)
		}
		if re := service.FingerprintGraph(g); re != fp {
			return fmt.Errorf("%s: decoded graph fingerprints to %s, want %s", spec, re, fp)
		}
		if err := g.Validate(); err != nil {
			return fmt.Errorf("%s: %v", spec, err)
		}
		got++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != len(want) {
		t.Fatalf("reopened store holds %d graphs, want %d", got, len(want))
	}
	if problems := s.Verify(); len(problems) != 0 {
		t.Fatalf("verify: %v", problems)
	}
}

// TestShortcutRoundTripFamilies builds, persists, reopens, and reloads
// shortcuts across workload families, asserting the reconstruction is
// canonically identical and measures identically.
func TestShortcutRoundTripFamilies(t *testing.T) {
	cases := []struct{ spec, parts string }{
		{"grid:8x8", "rows:8x8"},
		{"grid:10x10", "blobs:10"},
		{"torus:6x6", "blobs:6"},
		{"wheel:60", "rim"},
		{"ktree:80,3", "blobs:8"},
	}
	dir := t.TempDir()
	s := mustOpen(t, dir)
	type saved struct {
		key   service.Fingerprint
		g     *graph.Graph
		p     *partition.Partition
		res   *shortcut.Result
		wantH [][]int32
	}
	var all []saved
	for _, c := range cases {
		g, p, res := buildFixture(t, c.spec, c.parts, 3)
		fp := service.FingerprintGraph(g)
		if err := s.PutGraph(fp, g); err != nil {
			t.Fatal(err)
		}
		key := service.ShortcutKey(fp, p, shortcut.Options{})
		if err := s.PutShortcut(key, fp, p, shortcut.Options{}, res, 123*time.Millisecond); err != nil {
			t.Fatalf("PutShortcut(%s): %v", c.spec, err)
		}
		all = append(all, saved{key, g, p, res, canonicalH(res.Shortcut)})
	}
	s.Close()

	// Reopen: the serving representative is now the canonical decode, as
	// after a daemon restart.
	s = mustOpen(t, dir)
	defer s.Close()
	for i, c := range cases {
		sv := all[i]
		rep, ok, err := s.GetGraph(service.FingerprintGraph(sv.g))
		if err != nil || !ok {
			t.Fatalf("%s: GetGraph ok=%v err=%v", c.spec, ok, err)
		}
		// Re-derive the request partition against the new representative
		// exactly as the daemon would (canonical labels are
		// representation-independent).
		labels := make([]int, len(sv.p.PartOf))
		copy(labels, sv.p.PartOf)
		parts, err := partition.FromLabels(rep, labels)
		if err != nil {
			t.Fatal(err)
		}
		res, bt, ok, err := s.GetShortcut(sv.key, rep, parts)
		if err != nil {
			t.Fatalf("%s: GetShortcut: %v", c.spec, err)
		}
		if !ok {
			t.Fatalf("%s: shortcut %s missing after reopen", c.spec, sv.key)
		}
		if bt != 123*time.Millisecond {
			t.Errorf("%s: build time %v, want 123ms", c.spec, bt)
		}
		if res.Delta != sv.res.Delta || res.Iterations != sv.res.Iterations ||
			res.TreeDepth != sv.res.TreeDepth {
			t.Errorf("%s: metadata %+v, want delta=%d iters=%d depth=%d", c.spec,
				res, sv.res.Delta, sv.res.Iterations, sv.res.TreeDepth)
		}
		if !sameCanonicalH(canonicalH(res.Shortcut), sv.wantH) {
			t.Errorf("%s: reconstructed H sets differ canonically", c.spec)
		}
		if got, want := shortcut.Measure(res.Shortcut), shortcut.Measure(sv.res.Shortcut); got != want {
			t.Errorf("%s: quality %+v, want %+v", c.spec, got, want)
		}
		if res.Shortcut.Tree == nil {
			t.Errorf("%s: restriction tree not reconstructed", c.spec)
		}
	}
	if problems := s.Verify(); len(problems) != 0 {
		t.Fatalf("verify after reopen: %v", problems)
	}
}

// writeFixture populates a store with two graphs and one shortcut and
// returns the shortcut key plus the graph fingerprints.
func writeFixture(t *testing.T, dir string) (key, fpA, fpB service.Fingerprint) {
	t.Helper()
	s := mustOpen(t, dir)
	defer s.Close()
	gA, pA, resA := buildFixture(t, "grid:6x6", "blobs:6", 2)
	fpA = service.FingerprintGraph(gA)
	if err := s.PutGraph(fpA, gA); err != nil {
		t.Fatal(err)
	}
	key = service.ShortcutKey(fpA, pA, shortcut.Options{})
	if err := s.PutShortcut(key, fpA, pA, shortcut.Options{}, resA, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	gB, _, err := cli.ParseGraph("cycle:20", 1)
	if err != nil {
		t.Fatal(err)
	}
	fpB = service.FingerprintGraph(gB)
	if err := s.PutGraph(fpB, gB); err != nil {
		t.Fatal(err)
	}
	return key, fpA, fpB
}

func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	seqs, err := listSegments(osFS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]string, len(seqs))
	for i, seq := range seqs {
		out[i] = filepath.Join(dir, segName(seq))
	}
	return out
}

// TestTruncatedTail cuts bytes off the end of the segment (a torn append)
// and asserts the store opens, repairs, and keeps every earlier record.
func TestTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	key, fpA, fpB := writeFixture(t, dir)
	segs := segFiles(t, dir)
	path := segs[len(segs)-1]
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	// The cycle graph record (fpB) was written last; tearing 5 bytes off
	// destroys it and only it.
	if err := os.Truncate(path, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir)
	defer s.Close()
	st := s.OpenStats()
	if st.TruncatedBytes == 0 {
		t.Error("open repaired nothing, want a truncated tail")
	}
	if _, ok, _ := s.GetGraph(fpB); ok {
		t.Error("torn record still live")
	}
	if _, ok, err := s.GetGraph(fpA); !ok || err != nil {
		t.Errorf("earlier graph lost: ok=%v err=%v", ok, err)
	}
	if st.Shortcuts != 1 {
		t.Errorf("shortcuts = %d, want 1", st.Shortcuts)
	}
	if problems := s.Verify(); len(problems) != 0 {
		t.Errorf("verify after repair: %v", problems)
	}
	// The repaired store accepts appends again and they survive a reopen.
	gB, _, _ := cli.ParseGraph("cycle:20", 1)
	if err := s.PutGraph(fpB, gB); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s = mustOpen(t, dir)
	defer s.Close()
	if _, ok, _ := s.GetGraph(fpB); !ok {
		t.Error("re-appended record lost after reopen")
	}
	_ = key
}

// TestFlippedChecksumByte corrupts one CRC byte of a mid-file record and
// asserts exactly that record is skipped while the store still opens and
// later records survive.
func TestFlippedChecksumByte(t *testing.T) {
	dir := t.TempDir()
	_, fpA, fpB := writeFixture(t, dir)
	segs := segFiles(t, dir)
	path := segs[len(segs)-1]
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// The first record after the magic is the grid graph record: flip a
	// byte inside its CRC field (offset 13..16 of the frame).
	data[len(segMagic)+14] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s := mustOpen(t, dir)
	defer s.Close()
	st := s.OpenStats()
	if st.CorruptSkipped != 1 {
		t.Errorf("CorruptSkipped = %d, want 1", st.CorruptSkipped)
	}
	if _, ok, _ := s.GetGraph(fpA); ok {
		t.Error("checksum-corrupt record still live")
	}
	if _, ok, err := s.GetGraph(fpB); !ok || err != nil {
		t.Errorf("record after the corrupt one lost: ok=%v err=%v", ok, err)
	}
	// The shortcut record now references a missing graph; Verify must say
	// so rather than crash.
	problems := s.Verify()
	if len(problems) != 1 || problems[0].Kind != "shortcut" {
		t.Errorf("verify = %v, want exactly the orphaned shortcut", problems)
	}
}

// TestConcurrentWriteWhileRead hammers the store with concurrent writers
// and readers; run under -race this is the data-race proof.
func TestConcurrentWriteWhileRead(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer s.Close()
	g, p, res := buildFixture(t, "grid:6x6", "blobs:4", 1)
	fp := service.FingerprintGraph(g)
	if err := s.PutGraph(fp, g); err != nil {
		t.Fatal(err)
	}
	key := service.ShortcutKey(fp, p, shortcut.Options{})
	if err := s.PutShortcut(key, fp, p, shortcut.Options{}, res, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 20; i++ {
				gg := graph.RandomConnected(20, 30, rng)
				if err := s.PutGraph(service.FingerprintGraph(gg), gg); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, _, ok, err := s.GetShortcut(key, g, p); err != nil || !ok {
					errs <- fmt.Errorf("GetShortcut ok=%v err=%v", ok, err)
					return
				}
				if err := s.EachGraph(func(service.Fingerprint, *graph.Graph) error { return nil }); err != nil {
					errs <- err
					return
				}
				s.Records()
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := s.OpenStats(); st.Graphs != 81 {
		t.Errorf("graphs = %d, want 81", st.Graphs)
	}
}

// TestDeleteAndGC tombstones a graph, asserts its shortcut dies with it
// across a reopen, and checks GC reclaims the space and drops unreferenced
// partitions while the survivors verify clean.
func TestDeleteAndGC(t *testing.T) {
	dir := t.TempDir()
	key, fpA, fpB := writeFixture(t, dir)
	s := mustOpen(t, dir)
	defer s.Close()
	if err := s.DeleteGraph(fpA); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteGraph(fpA); err != nil { // idempotent
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		if _, ok, _ := s.GetGraph(fpA); ok {
			t.Errorf("%s: deleted graph still live", stage)
		}
		g, ok, _ := s.GetGraph(fpB)
		if !ok {
			t.Fatalf("%s: unrelated graph lost", stage)
		}
		if _, _, ok, _ := s.GetShortcut(key, g, nil); ok {
			t.Errorf("%s: dependent shortcut survived the tombstone", stage)
		}
	}
	check("after delete")
	s.Close()
	s = mustOpen(t, dir)
	check("after reopen")
	if st := s.OpenStats(); st.TombstonesApplied == 0 {
		t.Error("reopen applied no tombstone")
	}

	before := s.OpenStats().Bytes
	gc, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if gc.ReclaimedBytes <= 0 {
		t.Errorf("gc reclaimed %d bytes, want > 0 (before: %d)", gc.ReclaimedBytes, before)
	}
	if gc.DroppedRecords == 0 {
		t.Error("gc dropped nothing, want the orphaned partition gone")
	}
	if st := s.OpenStats(); st.Partitions != 0 || st.Shortcuts != 0 || st.Graphs != 1 {
		t.Errorf("post-gc counts = %+v, want exactly the surviving graph", st)
	}
	if problems := s.Verify(); len(problems) != 0 {
		t.Errorf("verify after gc: %v", problems)
	}
	check("after gc")
	// The compacted store must replay identically.
	s.Close()
	s = mustOpen(t, dir)
	defer s.Close()
	check("after gc reopen")
	// And still accept writes.
	gA, _, _ := cli.ParseGraph("grid:6x6", 2)
	if err := s.PutGraph(service.FingerprintGraph(gA), gA); err != nil {
		t.Fatal(err)
	}
}

// TestSegmentRotation forces tiny segments and checks records span
// multiple files and replay across all of them.
func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	want := make(map[service.Fingerprint]bool)
	for i := 0; i < 12; i++ {
		g := graph.RandomConnected(12, 20, rng)
		fp := service.FingerprintGraph(g)
		if err := s.PutGraph(fp, g); err != nil {
			t.Fatal(err)
		}
		want[fp] = true
	}
	s.Close()
	segs, _ := listSegments(osFS{}, dir)
	if len(segs) < 3 {
		t.Fatalf("rotation produced %d segments, want >= 3", len(segs))
	}
	s, err = Open(dir, Options{NoSync: true, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	got := 0
	s.EachGraph(func(fp service.Fingerprint, g *graph.Graph) error {
		if !want[fp] {
			t.Errorf("unexpected graph %s", fp)
		}
		got++
		return nil
	})
	if got != len(want) {
		t.Errorf("replayed %d graphs across segments, want %d", got, len(want))
	}
}

// TestPutDedup asserts re-putting known content writes nothing.
func TestPutDedup(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer s.Close()
	g, p, res := buildFixture(t, "grid:5x5", "blobs:5", 1)
	fp := service.FingerprintGraph(g)
	key := service.ShortcutKey(fp, p, shortcut.Options{})
	for i := 0; i < 3; i++ {
		if err := s.PutGraph(fp, g); err != nil {
			t.Fatal(err)
		}
		if err := s.PutShortcut(key, fp, p, shortcut.Options{}, res, time.Millisecond); err != nil {
			t.Fatal(err)
		}
	}
	st := s.OpenStats()
	if st.Graphs != 1 || st.Partitions != 1 || st.Shortcuts != 1 {
		t.Errorf("dedup failed: %+v", st)
	}
	if recs := s.Records(); len(recs) != 3 {
		t.Errorf("Records() = %d entries, want 3", len(recs))
	}
}

// TestPutShortcutRequiresLiveGraph pins the tombstone race fix: a detached
// persist arriving after DeleteGraph must not resurrect an orphan shortcut
// record.
func TestPutShortcutRequiresLiveGraph(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer s.Close()
	g, p, res := buildFixture(t, "grid:5x5", "blobs:5", 1)
	fp := service.FingerprintGraph(g)
	if err := s.PutGraph(fp, g); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteGraph(fp); err != nil {
		t.Fatal(err)
	}
	key := service.ShortcutKey(fp, p, shortcut.Options{})
	if err := s.PutShortcut(key, fp, p, shortcut.Options{}, res, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if st := s.OpenStats(); st.Shortcuts != 0 || st.Partitions != 0 {
		t.Errorf("orphan records written after tombstone: %+v", st)
	}
	if problems := s.Verify(); len(problems) != 0 {
		t.Errorf("verify: %v", problems)
	}
}

// TestPermInvalidatedOnDelete pins the stale-permutation fix: after
// DeleteGraph, re-ingesting the same content with a different edge
// insertion order must translate shortcut edge IDs through a fresh
// permutation, not the deleted representative's.
func TestPermInvalidatedOnDelete(t *testing.T) {
	mk := func(reversed bool) *graph.Graph {
		// A weighted 6-cycle; distinct weights make every edge's canonical
		// position unique, so a stale permutation would visibly misroute.
		g := graph.New(6)
		type e struct {
			u, v int
			w    float64
		}
		es := []e{{0, 1, 1}, {1, 2, 2}, {2, 3, 3}, {3, 4, 4}, {4, 5, 5}, {5, 0, 6}}
		if reversed {
			for i, j := 0, len(es)-1; i < j; i, j = i+1, j-1 {
				es[i], es[j] = es[j], es[i]
			}
		}
		for _, x := range es {
			g.AddWeightedEdge(x.u, x.v, x.w)
		}
		return g
	}
	gA, gB := mk(false), mk(true)
	fp := service.FingerprintGraph(gA)
	if service.FingerprintGraph(gB) != fp {
		t.Fatal("fixture graphs must share a fingerprint")
	}
	parts := func(g *graph.Graph) *partition.Partition {
		p, err := partition.FromLabels(g, []int{0, 0, 0, 1, 1, 1})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer s.Close()

	pA := parts(gA)
	resA, err := shortcut.Build(gA, pA, shortcut.Options{})
	if err != nil {
		t.Fatal(err)
	}
	key := service.ShortcutKey(fp, pA, shortcut.Options{})
	if err := s.PutGraph(fp, gA); err != nil {
		t.Fatal(err)
	}
	if err := s.PutShortcut(key, fp, pA, shortcut.Options{}, resA, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := s.DeleteGraph(fp); err != nil {
		t.Fatal(err)
	}

	// Re-ingest with reversed edge order and persist a fresh build.
	pB := parts(gB)
	resB, err := shortcut.Build(gB, pB, shortcut.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutGraph(fp, gB); err != nil {
		t.Fatal(err)
	}
	if err := s.PutShortcut(key, fp, pB, shortcut.Options{}, resB, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	got, _, ok, err := s.GetShortcut(key, gB, pB)
	if err != nil || !ok {
		t.Fatalf("GetShortcut ok=%v err=%v", ok, err)
	}
	if !sameCanonicalH(canonicalH(got.Shortcut), canonicalH(resB.Shortcut)) {
		t.Error("round trip through re-ingested representative corrupted the H sets")
	}
	if problems := s.Verify(); len(problems) != 0 {
		t.Errorf("verify: %v", problems)
	}
}

// TestVerifySurvivesEmptyPartitionPayload pins the zero-length-payload fix:
// a CRC-valid partition record with an empty payload must surface as a
// Problem, never panic the integrity checker.
func TestVerifySurvivesEmptyPartitionPayload(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	s.Close()
	// Hand-craft a framed 'P' record with plen = 0 and a correct CRC.
	frame := make([]byte, frameHdrSize)
	frame[0] = kindPartition
	key := service.Fingerprint(0xdeadbeef)
	binaryPut := func() {
		frame[1] = 0
		for i := 0; i < 8; i++ {
			frame[1+i] = byte(uint64(key) >> (8 * (7 - i)))
		}
	}
	binaryPut()
	crc := crc32.Checksum(frame[:9], crcTable)
	crc = crc32.Update(crc, crcTable, frame[9:13])
	for i := 0; i < 4; i++ {
		frame[13+i] = byte(crc >> (8 * (3 - i)))
	}
	f, err := os.OpenFile(filepath.Join(dir, segName(1)), os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(frame); err != nil {
		t.Fatal(err)
	}
	f.Close()
	s = mustOpen(t, dir)
	defer s.Close()
	problems := s.Verify()
	if len(problems) != 1 || problems[0].Kind != "partition" {
		t.Errorf("verify = %v, want exactly one partition problem", problems)
	}
}

// TestJobRecords exercises the 'J' record kind: newest-wins updates,
// replay across reopen, GC survival, verification, and corrupt-payload
// reporting.
func TestJobRecords(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)

	mkrec := func(id uint64, state jobs.State, created int64) []byte {
		payload, err := jobs.EncodeRecord(jobs.Record{
			ID:        jobs.ID(id),
			Kind:      "shortcut",
			Request:   []byte(`{"graph":"x"}`),
			State:     state,
			CreatedNs: created,
		})
		if err != nil {
			t.Fatal(err)
		}
		return payload
	}
	if err := s.PutJob(7, mkrec(7, jobs.Queued, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(9, mkrec(9, jobs.Queued, 200)); err != nil {
		t.Fatal(err)
	}
	// Supersede job 7: running, then done. Newest must win.
	if err := s.PutJob(7, mkrec(7, jobs.Running, 100)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(7, mkrec(7, jobs.Done, 100)); err != nil {
		t.Fatal(err)
	}

	check := func(stage string) {
		t.Helper()
		payload, ok, err := s.GetJob(7)
		if err != nil || !ok {
			t.Fatalf("%s: GetJob(7) = (ok=%v, %v)", stage, ok, err)
		}
		rec, err := jobs.DecodeRecord(payload)
		if err != nil {
			t.Fatal(err)
		}
		if rec.State != jobs.Done {
			t.Errorf("%s: job 7 state = %s, want the newest record (done)", stage, rec.State)
		}
		var ids []uint64
		if err := s.EachJob(func(id uint64, payload []byte) error {
			if _, err := jobs.DecodeRecord(payload); err != nil {
				return err
			}
			ids = append(ids, id)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(ids) != 2 || ids[0] != 7 || ids[1] != 9 {
			t.Errorf("%s: EachJob ids = %v, want [7 9] ascending", stage, ids)
		}
		if st := s.OpenStats(); st.Jobs != 2 {
			t.Errorf("%s: OpenStats.Jobs = %d, want 2", stage, st.Jobs)
		}
		if problems := s.Verify(); len(problems) != 0 {
			t.Errorf("%s: verify: %v", stage, problems)
		}
	}
	check("fresh")
	s.Close()
	s = mustOpen(t, dir)
	check("after reopen")

	// Records lists jobs with their kind.
	jobsSeen := 0
	for _, r := range s.Records() {
		if r.Kind == "job" {
			jobsSeen++
		}
	}
	if jobsSeen != 2 {
		t.Errorf("Records lists %d job rows, want 2", jobsSeen)
	}

	// GC compacts the superseded versions of job 7 but keeps the live
	// records.
	gc, err := s.GC()
	if err != nil {
		t.Fatal(err)
	}
	if gc.ReclaimedBytes <= 0 {
		t.Errorf("gc reclaimed %d bytes, want > 0 (two superseded job records)", gc.ReclaimedBytes)
	}
	check("after gc")

	// A record whose embedded ID disagrees with its key is a verify
	// problem, as is an undecodable payload.
	if err := s.PutJob(11, mkrec(12, jobs.Queued, 300)); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(13, []byte{0xff, 'g', 'a', 'r'}); err != nil {
		t.Fatal(err)
	}
	problems := s.Verify()
	if len(problems) != 2 {
		t.Fatalf("verify problems = %v, want exactly the two bad job records", problems)
	}
	s.Close()
}
