// Package errfs is a fault-injecting store.FS for crash-consistency and
// error-path testing. It delegates to the real filesystem but consults a
// hook before every operation that could mutate durable state, letting a
// test fail a specific fsync, tear a specific write short, fail a rename,
// or simulate a crash at the Nth mutation — after which every further
// mutation fails while reads keep working, so the test can observe the
// wreckage exactly as a post-crash reopen would find it.
//
// Injection is keyed by a deterministic operation counter: mutating
// operations are numbered 1, 2, 3, ... in the order the backend issues
// them, so "crash at op N" schedules are reproducible and a loop over N
// explores every crash point of a workload.
package errfs

import (
	"errors"
	"os"
	"sync"
	"sync/atomic"

	"locshort/internal/store"
)

// ErrInjected is the error returned by injected faults (unless the hook
// supplies its own).
var ErrInjected = errors.New("errfs: injected fault")

// ErrCrashed is returned by every mutating operation after Crash.
var ErrCrashed = errors.New("errfs: simulated crash")

// Op describes one counted (potentially mutating) filesystem operation.
type Op struct {
	// N is the 1-based sequence number of this operation.
	N int
	// Kind is one of "create", "open-rw", "write", "sync", "truncate",
	// "rename", "remove", "mkdir", "syncdir".
	Kind string
	// Path is the file the operation targets.
	Path string
}

// Fault is a hook's verdict on one operation. The zero value lets the
// operation through.
type Fault struct {
	// Err, when non-nil, is returned from the operation (which does not
	// run, except for the Partial prefix of a write).
	Err error
	// Partial, for "write" ops with Err set, writes this many bytes of the
	// payload through to the file before failing — a torn write.
	Partial int
}

// FS implements store.FS over the real filesystem with fault injection.
// Safe for concurrent use.
type FS struct {
	mu   sync.Mutex
	n    int
	hook func(Op) Fault
	// crashed is atomic, not mu-guarded, so a hook (which runs under mu)
	// can call Crash without deadlocking.
	crashed atomic.Bool
}

// New returns an FS with no faults armed.
func New() *FS { return &FS{} }

// SetHook installs the injection hook, called with every counted operation.
func (f *FS) SetHook(hook func(Op) Fault) {
	f.mu.Lock()
	f.hook = hook
	f.mu.Unlock()
}

// FailOp arms a single fault: counted operation n (of the given kind, or
// any kind if kind is "") fails with ErrInjected.
func (f *FS) FailOp(n int, kind string) {
	f.SetHook(func(op Op) Fault {
		if op.N == n && (kind == "" || op.Kind == kind) {
			return Fault{Err: ErrInjected}
		}
		return Fault{}
	})
}

// FailNextKind arms a fault against the next operation of the given kind.
func (f *FS) FailNextKind(kind string) {
	var once sync.Once
	f.SetHook(func(op Op) Fault {
		var fault Fault
		if op.Kind == kind {
			once.Do(func() { fault = Fault{Err: ErrInjected} })
		}
		return fault
	})
}

// CrashAtOp arms a simulated crash: counted operation n fails and every
// mutating operation after it fails with ErrCrashed.
func (f *FS) CrashAtOp(n int) {
	f.SetHook(func(op Op) Fault {
		if op.N >= n {
			f.Crash()
			return Fault{Err: ErrCrashed}
		}
		return Fault{}
	})
}

// Crash makes every subsequent mutating operation fail with ErrCrashed.
// Reads keep working: data already on disk is exactly what a reopen will
// find. Safe to call from inside a hook.
func (f *FS) Crash() { f.crashed.Store(true) }

// Ops returns how many counted operations have been issued.
func (f *FS) Ops() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.n
}

// begin counts one operation and returns the armed fault, if any.
func (f *FS) begin(kind, path string) Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed.Load() {
		return Fault{Err: ErrCrashed}
	}
	f.n++
	if f.hook != nil {
		return f.hook(Op{N: f.n, Kind: kind, Path: path})
	}
	return Fault{}
}

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (store.File, error) {
	if flag&(os.O_WRONLY|os.O_RDWR|os.O_CREATE|os.O_TRUNC|os.O_APPEND) != 0 {
		kind := "open-rw"
		if flag&os.O_CREATE != 0 {
			kind = "create"
		}
		if fault := f.begin(kind, name); fault.Err != nil {
			return nil, fault.Err
		}
	}
	osf, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{f: osf, fs: f}, nil
}

func (f *FS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (f *FS) Rename(oldpath, newpath string) error {
	if fault := f.begin("rename", newpath); fault.Err != nil {
		return fault.Err
	}
	return os.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if fault := f.begin("remove", name); fault.Err != nil {
		return fault.Err
	}
	return os.Remove(name)
}

func (f *FS) MkdirAll(path string, perm os.FileMode) error {
	if fault := f.begin("mkdir", path); fault.Err != nil {
		return fault.Err
	}
	return os.MkdirAll(path, perm)
}

func (f *FS) SyncDir(dir string) error {
	if fault := f.begin("syncdir", dir); fault.Err != nil {
		return fault.Err
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// file wraps an *os.File, routing mutations through the parent's hook.
// Reads pass through uncounted (and survive a crash — the bytes are on
// disk). Because it is not an *os.File, the segment store keeps sealed
// segments on the pread path instead of mmapping them, so every read stays
// observable too.
type file struct {
	f  *os.File
	fs *FS
}

func (w *file) Read(p []byte) (int, error)              { return w.f.Read(p) }
func (w *file) ReadAt(p []byte, off int64) (int, error) { return w.f.ReadAt(p, off) }
func (w *file) Stat() (os.FileInfo, error)              { return w.f.Stat() }
func (w *file) Close() error                            { return w.f.Close() }

func (w *file) Write(p []byte) (int, error) {
	if fault := w.fs.begin("write", w.f.Name()); fault.Err != nil {
		n := 0
		if fault.Partial > 0 && fault.Partial < len(p) {
			n, _ = w.f.Write(p[:fault.Partial])
		}
		return n, fault.Err
	}
	return w.f.Write(p)
}

func (w *file) WriteAt(p []byte, off int64) (int, error) {
	if fault := w.fs.begin("write", w.f.Name()); fault.Err != nil {
		n := 0
		if fault.Partial > 0 && fault.Partial < len(p) {
			n, _ = w.f.WriteAt(p[:fault.Partial], off)
		}
		return n, fault.Err
	}
	return w.f.WriteAt(p, off)
}

func (w *file) Sync() error {
	if fault := w.fs.begin("sync", w.f.Name()); fault.Err != nil {
		return fault.Err
	}
	return w.f.Sync()
}

func (w *file) Truncate(size int64) error {
	if fault := w.fs.begin("truncate", w.f.Name()); fault.Err != nil {
		return fault.Err
	}
	return w.f.Truncate(size)
}

var _ store.FS = (*FS)(nil)
