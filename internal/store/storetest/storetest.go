// Package storetest is the executable contract for store.Backend: a
// reusable conformance suite every storage backend must pass. The segment
// store runs through it as the reference implementation; the in-memory and
// object-directory backends prove equivalence by passing the identical
// suite; a future tiered or replicated backend starts by passing it too.
//
// The suite covers the contract documented on store.Backend — round-trips
// for every record kind across the graph families, idempotent re-puts,
// tombstone deletes, no-resurrection, iteration/warm-start ordering,
// payload verification (tampered bytes are detected, never served),
// peer-surface semantics, -race concurrency schedules, GC under concurrent
// readers — and, through the errfs fault injector, crash consistency:
// failed fsyncs, torn writes, faults mid-GC, and a crash-at-every-Nth-op
// sweep with reopen, asserting acknowledged records survive and the store
// never serves a record that fails re-verification.
package storetest

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"locshort/internal/cli"
	"locshort/internal/graph"
	"locshort/internal/jobs"
	"locshort/internal/partition"
	"locshort/internal/service"
	"locshort/internal/shortcut"
	"locshort/internal/store"
	"locshort/internal/store/storetest/errfs"
)

// Factory describes one backend to Run the conformance suite against.
type Factory struct {
	// Name labels the backend in test output.
	Name string
	// New opens a fresh backend rooted at dir (fatal on error).
	New func(t testing.TB, dir string) store.Backend
	// Reopen reopens dir after a Close, preserving durable state. nil
	// declares the backend ephemeral: reopen-dependent cases instead
	// assert that a fresh instance starts empty.
	Reopen func(t testing.TB, dir string) store.Backend
	// NewFS opens a backend whose filesystem access is routed through
	// fsys, with syncing enabled, returning rather than failing the test
	// on error (a crash schedule may legitimately break Open). nil skips
	// the fault-injection cases. Requires Reopen.
	NewFS func(t testing.TB, dir string, fsys store.FS) (store.Backend, error)
	// Corrupt tampers with at least one stored record payload byte on
	// disk (called between Close and Reopen). nil skips the tamper case.
	Corrupt func(t testing.TB, dir string)
	// HasGC declares the backend implements store.Compactor.
	HasGC bool
}

// families is one spec per generator family, with a partition shape.
var families = []struct{ spec, parts string }{
	{"grid:6x7", "blobs:6"},
	{"torus:5x5", "blobs:4"},
	{"wheel:40", "blobs:5"},
	{"cycle:30", "blobs:3"},
	{"path:17", "blobs:3"},
	{"complete:8", "blobs:2"},
	{"ktree:60,3", "blobs:6"},
	{"random:50,120", "blobs:5"},
	{"lb:5,12", "blobs:4"},
}

// fixture is one persistable (graph, partition, shortcut) triple with its
// content keys.
type fixture struct {
	spec  string
	g     *graph.Graph
	parts *partition.Partition
	res   *shortcut.Result
	opts  shortcut.Options
	bt    time.Duration

	gfp, pfp, key service.Fingerprint
}

func makeFixture(t testing.TB, spec, partSpec string, seed int64) *fixture {
	t.Helper()
	g, _, err := cli.ParseGraph(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	parts, err := cli.ParsePartition(g, partSpec, seed)
	if err != nil {
		t.Fatal(err)
	}
	res, err := shortcut.Build(g, parts, shortcut.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fx := &fixture{
		spec:  spec,
		g:     g,
		parts: parts,
		res:   res,
		bt:    time.Duration(17+len(spec)) * time.Millisecond,
	}
	fx.gfp = service.FingerprintGraph(g)
	fx.pfp = service.FingerprintPartition(parts)
	fx.key = service.ShortcutKey(fx.gfp, parts, fx.opts)
	return fx
}

// put persists the fixture's graph and shortcut.
func (fx *fixture) put(t testing.TB, b store.Backend) {
	t.Helper()
	if err := b.PutGraph(fx.gfp, fx.g); err != nil {
		t.Fatalf("%s: PutGraph: %v", fx.spec, err)
	}
	if err := b.PutShortcut(fx.key, fx.gfp, fx.parts, fx.opts, fx.res, fx.bt); err != nil {
		t.Fatalf("%s: PutShortcut: %v", fx.spec, err)
	}
}

// canonicalPayload is the representation-independent identity of the
// fixture's shortcut: the canonical record payload.
func (fx *fixture) canonicalPayload() []byte {
	return store.EncodeShortcutRecordPayload(fx.gfp, fx.parts, fx.opts, fx.res, fx.bt)
}

// checkGet round-trips every record of the fixture through b.
func (fx *fixture) checkGet(t testing.TB, b store.Backend) {
	t.Helper()
	g2, ok, err := b.GetGraph(fx.gfp)
	if err != nil || !ok {
		t.Fatalf("%s: GetGraph: ok=%v err=%v", fx.spec, ok, err)
	}
	if got := service.FingerprintGraph(g2); got != fx.gfp {
		t.Fatalf("%s: GetGraph returned graph with fingerprint %s, want %s", fx.spec, got, fx.gfp)
	}
	p2, ok, err := b.GetPartition(fx.pfp, fx.g)
	if err != nil || !ok {
		t.Fatalf("%s: GetPartition: ok=%v err=%v", fx.spec, ok, err)
	}
	if got := service.FingerprintPartition(p2); got != fx.pfp {
		t.Fatalf("%s: GetPartition returned partition with fingerprint %s, want %s", fx.spec, got, fx.pfp)
	}
	res2, bt2, ok, err := b.GetShortcut(fx.key, fx.g, fx.parts)
	if err != nil || !ok {
		t.Fatalf("%s: GetShortcut: ok=%v err=%v", fx.spec, ok, err)
	}
	got := store.EncodeShortcutRecordPayload(fx.gfp, fx.parts, fx.opts, res2, bt2)
	if !bytes.Equal(got, fx.canonicalPayload()) {
		t.Fatalf("%s: GetShortcut round-trip is not canonical-identical", fx.spec)
	}
}

// jobPayload renders a valid job record payload (Verify decodes job
// records, so opaque garbage would register as corruption).
func jobPayload(t testing.TB, id uint64, state jobs.State) []byte {
	t.Helper()
	payload, err := jobs.EncodeRecord(jobs.Record{ID: jobs.ID(id), Kind: "build", State: state})
	if err != nil {
		t.Fatal(err)
	}
	return payload
}

func mustVerifyClean(t testing.TB, b store.Backend) {
	t.Helper()
	if problems := b.Verify(); len(problems) != 0 {
		t.Fatalf("Verify: %d problems, first: %v", len(problems), problems[0])
	}
}

// Run exercises the full conformance suite against the backend f builds.
func Run(t *testing.T, f Factory) {
	if f.NewFS != nil && f.Reopen == nil {
		t.Fatal("storetest: Factory.NewFS requires Factory.Reopen")
	}

	t.Run("RoundTripFamilies", func(t *testing.T) { runRoundTrip(t, f) })
	t.Run("IdempotentRePuts", func(t *testing.T) { runIdempotent(t, f) })
	t.Run("TombstoneDelete", func(t *testing.T) { runTombstone(t, f) })
	t.Run("NoResurrection", func(t *testing.T) { runNoResurrection(t, f) })
	t.Run("IterationOrder", func(t *testing.T) { runIterationOrder(t, f) })
	t.Run("WrongPartition", func(t *testing.T) { runWrongPartition(t, f) })
	t.Run("GraphPayloadVerified", func(t *testing.T) { runGraphPayload(t, f) })
	t.Run("PeerSurface", func(t *testing.T) { runPeerSurface(t, f) })
	t.Run("Concurrency", func(t *testing.T) { runConcurrency(t, f) })
	if f.HasGC {
		t.Run("GCUnderConcurrentReaders", func(t *testing.T) { runGCUnderReaders(t, f) })
	}
	if f.Corrupt != nil {
		t.Run("TamperedPayload", func(t *testing.T) { runTamper(t, f) })
	}
	if f.NewFS != nil {
		t.Run("FaultInjection", func(t *testing.T) {
			t.Run("FailedFsync", func(t *testing.T) { runFailedFsync(t, f) })
			t.Run("TornWrite", func(t *testing.T) { runTornWrite(t, f) })
			if f.HasGC {
				t.Run("FaultMidGC", func(t *testing.T) { runFaultMidGC(t, f) })
			}
			t.Run("CrashReopenSweep", func(t *testing.T) { runCrashSweep(t, f) })
		})
	}
}

// runRoundTrip persists every record kind across every graph family and
// round-trips them, then again across a reopen (durable backends) or
// against a fresh instance (ephemeral backends start empty).
func runRoundTrip(t *testing.T, f Factory) {
	dir := t.TempDir()
	b := f.New(t, dir)
	var fxs []*fixture
	for _, fam := range families {
		fx := makeFixture(t, fam.spec, fam.parts, 1)
		fx.put(t, b)
		fxs = append(fxs, fx)
	}
	jobBytes := jobPayload(t, 42, jobs.Done)
	if err := b.PutJob(42, jobBytes); err != nil {
		t.Fatal(err)
	}
	for _, fx := range fxs {
		fx.checkGet(t, b)
	}
	if got, ok, err := b.GetJob(42); err != nil || !ok || !bytes.Equal(got, jobBytes) {
		t.Fatalf("GetJob: ok=%v err=%v payload-match=%v", ok, err, bytes.Equal(got, jobBytes))
	}
	st := b.OpenStats()
	if st.Graphs != len(fxs) || st.Shortcuts != len(fxs) || st.Jobs != 1 {
		t.Fatalf("OpenStats: %+v, want %d graphs, %d shortcuts, 1 job", st, len(fxs), len(fxs))
	}
	mustVerifyClean(t, b)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}

	if f.Reopen == nil {
		b2 := f.New(t, dir)
		if st := b2.OpenStats(); st.Graphs != 0 || st.Shortcuts != 0 || st.Jobs != 0 {
			t.Fatalf("ephemeral backend not empty after restart: %+v", st)
		}
		if err := b2.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		return
	}
	b2 := f.Reopen(t, dir)
	defer b2.Close()
	for _, fx := range fxs {
		fx.checkGet(t, b2)
	}
	if got, ok, err := b2.GetJob(42); err != nil || !ok || !bytes.Equal(got, jobBytes) {
		t.Fatalf("GetJob after reopen: ok=%v err=%v", ok, err)
	}
	st2 := b2.OpenStats()
	if st2.Graphs != st.Graphs || st2.Partitions != st.Partitions ||
		st2.Shortcuts != st.Shortcuts || st2.Jobs != st.Jobs {
		t.Fatalf("OpenStats after reopen: %+v, want counts of %+v", st2, st)
	}
	mustVerifyClean(t, b2)
}

// runIdempotent re-puts known content and checks nothing grows.
func runIdempotent(t *testing.T, f Factory) {
	b := f.New(t, t.TempDir())
	defer b.Close()
	fx := makeFixture(t, "grid:6x6", "blobs:4", 2)
	fx.put(t, b)
	before := len(b.Records())
	for i := 0; i < 3; i++ {
		fx.put(t, b)
		if err := b.PutGraphPayload(fx.gfp, store.EncodeGraphPayload(fx.g)); err != nil {
			t.Fatal(err)
		}
	}
	if after := len(b.Records()); after != before {
		t.Fatalf("re-puts grew live records: %d -> %d", before, after)
	}
	fx.checkGet(t, b)
}

// runTombstone deletes one graph and checks the delete takes out its
// shortcuts, spares unrelated records, and (durable backends) survives
// reopen.
func runTombstone(t *testing.T, f Factory) {
	dir := t.TempDir()
	b := f.New(t, dir)
	fxA := makeFixture(t, "grid:6x6", "blobs:4", 3)
	fxB := makeFixture(t, "torus:4x4", "blobs:3", 3)
	fxA.put(t, b)
	fxB.put(t, b)
	if err := b.DeleteGraph(fxA.gfp); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteGraph(service.Fingerprint(0xdead)); err != nil {
		t.Fatalf("deleting an absent graph must be a no-op, got %v", err)
	}
	checkGone := func(b store.Backend, when string) {
		t.Helper()
		if _, ok, err := b.GetGraph(fxA.gfp); ok || err != nil {
			t.Fatalf("%s: deleted graph still served: ok=%v err=%v", when, ok, err)
		}
		if b.HasShortcut(fxA.key) {
			t.Fatalf("%s: shortcut of deleted graph still live", when)
		}
		if _, _, ok, err := b.GetShortcut(fxA.key, fxA.g, fxA.parts); ok || err != nil {
			t.Fatalf("%s: deleted shortcut still served: ok=%v err=%v", when, ok, err)
		}
		fxB.checkGet(t, b)
	}
	checkGone(b, "before reopen")
	mustVerifyClean(t, b)
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if f.Reopen == nil {
		return
	}
	b2 := f.Reopen(t, dir)
	defer b2.Close()
	checkGone(b2, "after reopen")
	mustVerifyClean(t, b2)
}

// runNoResurrection checks a PutShortcut racing behind DeleteGraph is
// silently dropped.
func runNoResurrection(t *testing.T, f Factory) {
	b := f.New(t, t.TempDir())
	defer b.Close()
	fx := makeFixture(t, "grid:5x5", "blobs:4", 4)
	if err := b.PutGraph(fx.gfp, fx.g); err != nil {
		t.Fatal(err)
	}
	if err := b.DeleteGraph(fx.gfp); err != nil {
		t.Fatal(err)
	}
	if err := b.PutShortcut(fx.key, fx.gfp, fx.parts, fx.opts, fx.res, fx.bt); err != nil {
		t.Fatalf("PutShortcut after DeleteGraph must drop silently, got %v", err)
	}
	if b.HasShortcut(fx.key) {
		t.Fatal("shortcut resurrected a deleted graph")
	}
	mustVerifyClean(t, b)
}

// runIterationOrder checks the deterministic warm-start orders: EachGraph
// ascends by fingerprint, EachJob by job ID.
func runIterationOrder(t *testing.T, f Factory) {
	b := f.New(t, t.TempDir())
	defer b.Close()
	want := make(map[service.Fingerprint]bool)
	for _, fam := range families[:5] {
		g, _, err := cli.ParseGraph(fam.spec, 5)
		if err != nil {
			t.Fatal(err)
		}
		fp := service.FingerprintGraph(g)
		if err := b.PutGraph(fp, g); err != nil {
			t.Fatal(err)
		}
		want[fp] = true
	}
	var prev service.Fingerprint
	seen := 0
	if err := b.EachGraph(func(fp service.Fingerprint, g *graph.Graph) error {
		if seen > 0 && fp <= prev {
			t.Fatalf("EachGraph out of order: %s after %s", fp, prev)
		}
		if !want[fp] {
			t.Fatalf("EachGraph yielded unknown fingerprint %s", fp)
		}
		prev, seen = fp, seen+1
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if seen != len(want) {
		t.Fatalf("EachGraph yielded %d graphs, want %d", seen, len(want))
	}

	for _, id := range []uint64{5, 1, 9} {
		if err := b.PutJob(id, jobPayload(t, id, jobs.Queued)); err != nil {
			t.Fatal(err)
		}
	}
	var ids []uint64
	if err := b.EachJob(func(id uint64, payload []byte) error {
		ids = append(ids, id)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(ids) != "[1 5 9]" {
		t.Fatalf("EachJob order: %v, want [1 5 9]", ids)
	}
}

// runWrongPartition checks a stored shortcut read back against the wrong
// partition surfaces an error, never a silently wrong result.
func runWrongPartition(t *testing.T, f Factory) {
	b := f.New(t, t.TempDir())
	defer b.Close()
	fx := makeFixture(t, "grid:6x6", "blobs:4", 6)
	fx.put(t, b)
	other, err := cli.ParsePartition(fx.g, "blobs:7", 99)
	if err != nil {
		t.Fatal(err)
	}
	if service.FingerprintPartition(other) == fx.pfp {
		t.Fatal("test needs a distinct partition")
	}
	if _, _, ok, err := b.GetShortcut(fx.key, fx.g, other); err == nil && ok {
		t.Fatal("GetShortcut served a shortcut against the wrong partition")
	}
}

// runGraphPayload checks PutGraphPayload verifies content before writing.
func runGraphPayload(t *testing.T, f Factory) {
	b := f.New(t, t.TempDir())
	defer b.Close()
	fx := makeFixture(t, "wheel:30", "blobs:3", 7)
	payload := store.EncodeGraphPayload(fx.g)
	if err := b.PutGraphPayload(fx.gfp, payload); err != nil {
		t.Fatal(err)
	}
	fx2 := makeFixture(t, "cycle:12", "blobs:2", 7)
	bad := append([]byte(nil), store.EncodeGraphPayload(fx2.g)...)
	bad[len(bad)-1] ^= 0x01
	if err := b.PutGraphPayload(fx2.gfp, bad); err == nil {
		t.Fatal("PutGraphPayload accepted a payload that does not hash to its key")
	}
	if err := b.PutGraphPayload(fx2.gfp, payload); err == nil {
		t.Fatal("PutGraphPayload accepted a payload under the wrong key")
	}
	if _, ok, _ := b.GetGraph(fx2.gfp); ok {
		t.Fatal("rejected payload became a live record")
	}
	mustVerifyClean(t, b)
}

// runPeerSurface checks the inventory/export/import surface cluster
// replication rides on.
func runPeerSurface(t *testing.T, f Factory) {
	b := f.New(t, t.TempDir())
	defer b.Close()
	var fxs []*fixture
	for _, fam := range families[:4] {
		fx := makeFixture(t, fam.spec, fam.parts, 8)
		fx.put(t, b)
		fxs = append(fxs, fx)
	}

	fps := b.GraphFingerprints()
	if len(fps) != len(fxs) {
		t.Fatalf("GraphFingerprints: %d, want %d", len(fps), len(fxs))
	}
	for i := 1; i < len(fps); i++ {
		if fps[i-1] >= fps[i] {
			t.Fatal("GraphFingerprints not sorted")
		}
	}

	inv := b.ShortcutInventory(0, 0)
	if len(inv) != len(fxs) {
		t.Fatalf("full-circle inventory: %d entries, want %d", len(inv), len(fxs))
	}
	for i := 1; i < len(inv); i++ {
		if inv[i-1].Key >= inv[i].Key {
			t.Fatal("ShortcutInventory not sorted by key")
		}
	}
	for _, fx := range fxs {
		arc := b.ShortcutInventory(uint64(fx.key)-1, uint64(fx.key))
		found := false
		for _, e := range arc {
			if e.Key == fx.key {
				found = true
				if e.GraphFP != fx.gfp || e.PartitionFP != fx.pfp {
					t.Fatalf("inventory entry for %s has wrong dependencies", fx.key)
				}
			}
		}
		if !found {
			t.Fatalf("arc (key-1, key] missed key %s", fx.key)
		}
		if !b.HasShortcut(fx.key) || !b.GraphKnown(fx.gfp) {
			t.Fatal("HasShortcut/GraphKnown miss for live records")
		}
	}

	// Export, verify, and import into a second instance.
	fx := fxs[0]
	rec, ok, err := b.ShortcutRecord(fx.key)
	if err != nil || !ok {
		t.Fatalf("ShortcutRecord: ok=%v err=%v", ok, err)
	}
	if _, _, _, _, err := store.VerifyPeerRecord(rec); err != nil {
		t.Fatalf("exported record fails verification: %v", err)
	}
	b2 := f.New(t, t.TempDir())
	defer b2.Close()
	if _, written, err := b2.ImportShortcut(rec); err != nil || !written {
		t.Fatalf("ImportShortcut: written=%v err=%v", written, err)
	}
	if _, written, err := b2.ImportShortcut(rec); err != nil || written {
		t.Fatalf("re-import must dedupe: written=%v err=%v", written, err)
	}
	fx.checkGet(t, b2)
	mustVerifyClean(t, b2)

	// A tampered record must be rejected wholesale.
	bad := rec
	bad.ShortcutPayload = append([]byte(nil), rec.ShortcutPayload...)
	bad.ShortcutPayload[len(bad.ShortcutPayload)-1] ^= 0x01
	b3 := f.New(t, t.TempDir())
	defer b3.Close()
	if _, _, err := b3.ImportShortcut(bad); err == nil {
		t.Fatal("ImportShortcut accepted a tampered payload")
	}
	if b3.HasShortcut(bad.Key) || b3.GraphKnown(bad.GraphFP) {
		t.Fatal("tampered import left records behind")
	}
}

// runConcurrency drives writers, readers, and a deleter concurrently; the
// -race matrix entry turns this into the suite's schedule check. The
// backend must stay error-free and verify clean.
func runConcurrency(t *testing.T, f Factory) {
	b := f.New(t, t.TempDir())
	defer b.Close()
	var fxs []*fixture
	for _, fam := range families[:3] {
		fxs = append(fxs, makeFixture(t, fam.spec, fam.parts, 9))
	}
	victim := makeFixture(t, "grid:4x4", "blobs:2", 9)

	const iters = 60
	var wg sync.WaitGroup
	errs := make(chan error, 256)
	report := func(err error) {
		if err != nil {
			select {
			case errs <- err:
			default:
			}
		}
	}
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fx := fxs[(w+i)%len(fxs)]
				report(b.PutGraph(fx.gfp, fx.g))
				report(b.PutShortcut(fx.key, fx.gfp, fx.parts, fx.opts, fx.res, fx.bt))
				report(b.PutJob(uint64(w)*1000+uint64(i), jobPayload(t, uint64(w)*1000+uint64(i), jobs.Running)))
			}
		}(w)
	}
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				fx := fxs[(r+i)%len(fxs)]
				if _, _, _, err := b.GetShortcut(fx.key, fx.g, fx.parts); err != nil {
					report(err)
				}
				report(b.EachGraph(func(service.Fingerprint, *graph.Graph) error { return nil }))
				b.ShortcutInventory(uint64(i), uint64(i+1000))
				b.OpenStats()
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/2; i++ {
			report(b.PutGraph(victim.gfp, victim.g))
			report(b.PutShortcut(victim.key, victim.gfp, victim.parts, victim.opts, victim.res, victim.bt))
			report(b.DeleteGraph(victim.gfp))
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for _, fx := range fxs {
		fx.checkGet(t, b)
	}
	mustVerifyClean(t, b)
}

// runGCUnderReaders pins the graveyard contract: payload slices handed out
// before a GC must stay byte-stable across it.
func runGCUnderReaders(t *testing.T, f Factory) {
	b := f.New(t, t.TempDir())
	defer b.Close()
	var fxs []*fixture
	for _, fam := range families[:4] {
		fx := makeFixture(t, fam.spec, fam.parts, 10)
		fx.put(t, b)
		fxs = append(fxs, fx)
	}
	victim := fxs[0]

	// Hand out payload slices (zero-copy on the mmap'd segment store) and
	// snapshot their contents before any GC.
	type held struct {
		key      service.Fingerprint
		slice    []byte
		snapshot []byte
	}
	var holds []held
	for _, fx := range fxs {
		payload, ok, err := b.ShortcutPayload(fx.key)
		if err != nil || !ok {
			t.Fatalf("ShortcutPayload: ok=%v err=%v", ok, err)
		}
		holds = append(holds, held{fx.key, payload, append([]byte(nil), payload...)})
	}

	// Readers continuously re-read the held slices while the delete and
	// GC run.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, h := range holds {
					if !bytes.Equal(h.slice, h.snapshot) {
						panic("held payload slice mutated during GC")
					}
				}
			}
		}()
	}

	if err := b.DeleteGraph(victim.gfp); err != nil {
		t.Fatal(err)
	}
	gc, ok := b.(store.Compactor)
	if !ok {
		t.Fatal("Factory.HasGC set but backend does not implement store.Compactor")
	}
	stats, err := gc.GC()
	if err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	if stats.LiveRecords == 0 {
		t.Fatal("GC reports zero live records with live fixtures present")
	}
	for _, h := range holds {
		if !bytes.Equal(h.slice, h.snapshot) {
			t.Fatalf("payload slice for %s changed across GC", h.key)
		}
	}
	for _, fx := range fxs[1:] {
		fx.checkGet(t, b)
	}
	if b.HasShortcut(victim.key) {
		t.Fatal("GC resurrected a deleted shortcut")
	}
	mustVerifyClean(t, b)
}

// runTamper flips stored payload bytes on disk and checks the backend
// detects the damage and never serves an unverifiable record.
func runTamper(t *testing.T, f Factory) {
	if f.Reopen == nil {
		t.Skip("tamper case needs a durable backend")
	}
	dir := t.TempDir()
	b := f.New(t, dir)
	var fxs []*fixture
	for _, fam := range families[:4] {
		fx := makeFixture(t, fam.spec, fam.parts, 11)
		fx.put(t, b)
		fxs = append(fxs, fx)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	f.Corrupt(t, dir)
	b2 := f.Reopen(t, dir)
	defer b2.Close()

	st := b2.OpenStats()
	detected := len(b2.Verify()) + st.CorruptSkipped
	if st.TruncatedBytes > 0 {
		detected++ // tail damage repaired by truncation counts as detected
	}
	if detected == 0 {
		t.Fatal("tampered payload went completely undetected")
	}
	// Whatever is still served must re-verify; damage surfaces as a miss
	// or an error, never a wrong answer.
	for _, fx := range fxs {
		if g, ok, err := b2.GetGraph(fx.gfp); err == nil && ok {
			if service.FingerprintGraph(g) != fx.gfp {
				t.Fatalf("%s: tampered graph served as a wrong answer", fx.spec)
			}
		}
		res2, bt2, ok, err := b2.GetShortcut(fx.key, fx.g, fx.parts)
		if err == nil && ok {
			got := store.EncodeShortcutRecordPayload(fx.gfp, fx.parts, fx.opts, res2, bt2)
			if !bytes.Equal(got, fx.canonicalPayload()) {
				t.Fatalf("%s: tampered shortcut served as a wrong answer", fx.spec)
			}
		}
	}
}

// runFailedFsync checks a failed fsync surfaces as a put error, the failed
// record is not acknowledged, and the backend recovers once the fault
// clears.
func runFailedFsync(t *testing.T, f Factory) {
	dir := t.TempDir()
	efs := errfs.New()
	b, err := f.NewFS(t, dir, efs)
	if err != nil {
		t.Fatal(err)
	}
	fx1 := makeFixture(t, "grid:6x6", "blobs:4", 12)
	fx1.put(t, b)

	fx2 := makeFixture(t, "torus:4x4", "blobs:3", 12)
	efs.FailNextKind("sync")
	if err := b.PutGraph(fx2.gfp, fx2.g); err == nil {
		t.Fatal("PutGraph succeeded through a failed fsync")
	}
	efs.SetHook(nil)

	// Fault cleared: the same put must now succeed, and nothing already
	// acknowledged was damaged.
	if err := b.PutGraph(fx2.gfp, fx2.g); err != nil {
		t.Fatalf("PutGraph after fault cleared: %v", err)
	}
	if _, ok, err := b.GetGraph(fx2.gfp); err != nil || !ok {
		t.Fatalf("GetGraph after retry: ok=%v err=%v", ok, err)
	}
	fx1.checkGet(t, b)
	mustVerifyClean(t, b)
	if err := b.Close(); err != nil {
		t.Fatalf("Close before reopen: %v", err)
	}

	b2 := f.Reopen(t, dir)
	defer b2.Close()
	fx1.checkGet(t, b2)
	mustVerifyClean(t, b2)
}

// runTornWrite tears a write partway and checks the unacknowledged record
// stays invisible, in-flight damage is repaired, and a reopen comes up
// clean with every acknowledged record intact.
func runTornWrite(t *testing.T, f Factory) {
	dir := t.TempDir()
	efs := errfs.New()
	b, err := f.NewFS(t, dir, efs)
	if err != nil {
		t.Fatal(err)
	}
	fx1 := makeFixture(t, "grid:6x6", "blobs:4", 13)
	fx1.put(t, b)

	fx2 := makeFixture(t, "wheel:30", "blobs:3", 13)
	armed := true
	efs.SetHook(func(op errfs.Op) errfs.Fault {
		if armed && op.Kind == "write" {
			armed = false
			return errfs.Fault{Err: errfs.ErrInjected, Partial: 7}
		}
		return errfs.Fault{}
	})
	if err := b.PutGraph(fx2.gfp, fx2.g); err == nil {
		t.Fatal("PutGraph succeeded through a torn write")
	}
	efs.SetHook(nil)
	if _, ok, _ := b.GetGraph(fx2.gfp); ok {
		t.Fatal("torn record became visible")
	}
	// The backend must absorb the torn bytes: a retry lands cleanly.
	if err := b.PutGraph(fx2.gfp, fx2.g); err != nil {
		t.Fatalf("PutGraph retry over torn bytes: %v", err)
	}
	fx1.checkGet(t, b)
	mustVerifyClean(t, b)
	if err := b.Close(); err != nil {
		t.Fatalf("Close before reopen: %v", err)
	}

	b2 := f.Reopen(t, dir)
	defer b2.Close()
	fx1.checkGet(t, b2)
	if _, ok, err := b2.GetGraph(fx2.gfp); err != nil || !ok {
		t.Fatalf("retried record lost across reopen: ok=%v err=%v", ok, err)
	}
	mustVerifyClean(t, b2)
}

// runFaultMidGC fails the first filesystem operation GC issues and checks
// the failed GC loses nothing, then a clean GC succeeds.
func runFaultMidGC(t *testing.T, f Factory) {
	dir := t.TempDir()
	efs := errfs.New()
	b, err := f.NewFS(t, dir, efs)
	if err != nil {
		t.Fatal(err)
	}
	var fxs []*fixture
	for _, fam := range families[:3] {
		fx := makeFixture(t, fam.spec, fam.parts, 14)
		fx.put(t, b)
		fxs = append(fxs, fx)
	}
	if err := b.DeleteGraph(fxs[0].gfp); err != nil {
		t.Fatal(err)
	}
	gc, ok := b.(store.Compactor)
	if !ok {
		t.Fatal("Factory.HasGC set but backend does not implement store.Compactor")
	}

	var once sync.Once
	efs.SetHook(func(op errfs.Op) errfs.Fault {
		var fault errfs.Fault
		once.Do(func() { fault = errfs.Fault{Err: errfs.ErrInjected} })
		return fault
	})
	if _, err := gc.GC(); err == nil {
		t.Fatal("GC succeeded through an injected fault")
	}
	efs.SetHook(nil)

	for _, fx := range fxs[1:] {
		fx.checkGet(t, b)
	}
	mustVerifyClean(t, b)
	if _, err := gc.GC(); err != nil {
		t.Fatalf("GC after fault cleared: %v", err)
	}
	for _, fx := range fxs[1:] {
		fx.checkGet(t, b)
	}
	mustVerifyClean(t, b)
	if err := b.Close(); err != nil {
		t.Fatalf("Close before reopen: %v", err)
	}

	b2 := f.Reopen(t, dir)
	defer b2.Close()
	for _, fx := range fxs[1:] {
		fx.checkGet(t, b2)
	}
	mustVerifyClean(t, b2)
}

// crashStep is one scripted operation of the crash sweep workload.
type crashStep struct {
	desc string
	run  func(b store.Backend) error
	// apply folds an acknowledged step into the expected live set;
	// clobber marks the keys whose post-crash state is indeterminate when
	// the step did NOT acknowledge.
	apply   func(m *crashModel)
	clobber func(m *crashModel)
}

// crashModel tracks, per key, whether the record must exist, must not
// exist, or may be either after an interrupted workload.
type crashModel struct {
	graphs    map[service.Fingerprint]int // 1 must exist, -1 must not, 0 unknown
	shortcuts map[service.Fingerprint]int
	jobs      map[uint64]int
}

func newCrashModel() *crashModel {
	return &crashModel{
		graphs:    make(map[service.Fingerprint]int),
		shortcuts: make(map[service.Fingerprint]int),
		jobs:      make(map[uint64]int),
	}
}

// runCrashSweep simulates a crash at every Nth filesystem mutation of a
// fixed workload, reopens the directory on the real filesystem, and checks
// acknowledged state survived, unacknowledged state is at worst absent,
// and the store verifies clean and accepts writes — for every crash point.
func runCrashSweep(t *testing.T, f Factory) {
	fxA := makeFixture(t, "grid:5x5", "blobs:3", 15)
	fxB := makeFixture(t, "torus:4x4", "blobs:2", 15)
	steps := []crashStep{
		{
			desc:    "put graph A",
			run:     func(b store.Backend) error { return b.PutGraph(fxA.gfp, fxA.g) },
			apply:   func(m *crashModel) { m.graphs[fxA.gfp] = 1 },
			clobber: func(m *crashModel) { m.graphs[fxA.gfp] = 0 },
		},
		{
			desc: "put shortcut A",
			run: func(b store.Backend) error {
				return b.PutShortcut(fxA.key, fxA.gfp, fxA.parts, fxA.opts, fxA.res, fxA.bt)
			},
			// An error-free PutShortcut only guarantees the record when the
			// graph put was acknowledged too: a shortcut against a non-live
			// graph is silently dropped by contract.
			apply: func(m *crashModel) {
				if m.graphs[fxA.gfp] == 1 {
					m.shortcuts[fxA.key] = 1
				} else {
					m.shortcuts[fxA.key] = 0
				}
			},
			clobber: func(m *crashModel) { m.shortcuts[fxA.key] = 0 },
		},
		{
			desc:    "put job 7",
			run:     func(b store.Backend) error { return b.PutJob(7, mustJobPayload(7)) },
			apply:   func(m *crashModel) { m.jobs[7] = 1 },
			clobber: func(m *crashModel) { m.jobs[7] = 0 },
		},
		{
			desc:    "put graph B",
			run:     func(b store.Backend) error { return b.PutGraph(fxB.gfp, fxB.g) },
			apply:   func(m *crashModel) { m.graphs[fxB.gfp] = 1 },
			clobber: func(m *crashModel) { m.graphs[fxB.gfp] = 0 },
		},
		{
			desc: "put shortcut B",
			run: func(b store.Backend) error {
				return b.PutShortcut(fxB.key, fxB.gfp, fxB.parts, fxB.opts, fxB.res, fxB.bt)
			},
			apply: func(m *crashModel) {
				if m.graphs[fxB.gfp] == 1 {
					m.shortcuts[fxB.key] = 1
				} else {
					m.shortcuts[fxB.key] = 0
				}
			},
			clobber: func(m *crashModel) { m.shortcuts[fxB.key] = 0 },
		},
		{
			desc: "delete graph A",
			run:  func(b store.Backend) error { return b.DeleteGraph(fxA.gfp) },
			// A delete erases what the store saw. If the graph put never
			// acknowledged, the delete was a no-op over a possibly-durable
			// latent record, which may legitimately revive at reopen — only
			// an acked put followed by an acked delete pins "must not
			// exist".
			apply: func(m *crashModel) {
				if m.graphs[fxA.gfp] == 1 {
					m.graphs[fxA.gfp] = -1
					if m.shortcuts[fxA.key] == 1 {
						m.shortcuts[fxA.key] = -1
					} else {
						m.shortcuts[fxA.key] = 0
					}
				} else {
					m.graphs[fxA.gfp] = 0
					m.shortcuts[fxA.key] = 0
				}
			},
			clobber: func(m *crashModel) {
				m.graphs[fxA.gfp] = 0
				m.shortcuts[fxA.key] = 0
			},
		},
		{
			desc:    "put job 8",
			run:     func(b store.Backend) error { return b.PutJob(8, mustJobPayload(8)) },
			apply:   func(m *crashModel) { m.jobs[8] = 1 },
			clobber: func(m *crashModel) { m.jobs[8] = 0 },
		},
	}

	// Dry run to size the sweep: how many counted mutations does the full
	// workload (including Open) issue?
	total := func() int {
		efs := errfs.New()
		dir := t.TempDir()
		b, err := f.NewFS(t, dir, efs)
		if err != nil {
			t.Fatalf("dry run open: %v", err)
		}
		for _, st := range steps {
			if err := st.run(b); err != nil {
				t.Fatalf("dry run %s: %v", st.desc, err)
			}
		}
		if err := b.Close(); err != nil {
			t.Fatalf("dry-run Close: %v", err)
		}
		return efs.Ops()
	}()
	if total == 0 {
		t.Fatal("workload issued no filesystem mutations")
	}

	for n := 1; n <= total; n++ {
		n := n
		t.Run(fmt.Sprintf("op%03d", n), func(t *testing.T) {
			dir := t.TempDir()
			efs := errfs.New()
			efs.CrashAtOp(n)
			model := newCrashModel()
			b, err := f.NewFS(t, dir, efs)
			if err == nil {
				for _, st := range steps {
					if err := st.run(b); err != nil {
						st.clobber(model)
					} else {
						st.apply(model)
					}
				}
				_ = b.Close() // errors expected under a crashed FS
			}

			b2 := f.Reopen(t, dir)
			defer b2.Close()
			for fp, want := range model.graphs {
				g, ok, err := b2.GetGraph(fp)
				switch {
				case want == 1 && (err != nil || !ok):
					t.Fatalf("crash@%d: acked graph %s lost: ok=%v err=%v", n, fp, ok, err)
				case want == -1 && ok:
					t.Fatalf("crash@%d: deleted graph %s resurrected", n, fp)
				case ok && service.FingerprintGraph(g) != fp:
					t.Fatalf("crash@%d: graph %s served with wrong content", n, fp)
				}
			}
			for key, want := range model.shortcuts {
				ok := b2.HasShortcut(key)
				if want == 1 && !ok {
					t.Fatalf("crash@%d: acked shortcut %s lost", n, key)
				}
				if want == -1 && ok {
					t.Fatalf("crash@%d: deleted shortcut %s resurrected", n, key)
				}
			}
			for id, want := range model.jobs {
				payload, ok, err := b2.GetJob(id)
				if want == 1 && (err != nil || !ok || !bytes.Equal(payload, mustJobPayload(id))) {
					t.Fatalf("crash@%d: acked job %d lost or damaged: ok=%v err=%v", n, id, ok, err)
				}
			}
			mustVerifyClean(t, b2)
			// The reopened store must accept new writes.
			fresh := makeFixture(t, "path:9", "blobs:2", int64(16+n))
			if err := b2.PutGraph(fresh.gfp, fresh.g); err != nil {
				t.Fatalf("crash@%d: reopened store rejects writes: %v", n, err)
			}
		})
	}
}

func mustJobPayload(id uint64) []byte {
	payload, err := jobs.EncodeRecord(jobs.Record{ID: jobs.ID(id), Kind: "build", State: jobs.Done})
	if err != nil {
		panic(err)
	}
	return payload
}
