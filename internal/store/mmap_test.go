package store

import (
	"bytes"
	"os"
	"testing"
	"time"

	"locshort/internal/cli"
	"locshort/internal/partition"
	"locshort/internal/service"
	"locshort/internal/shortcut"
)

// writeSegmentedFixture fills dir with enough records to seal several
// segments (tiny SegmentBytes forces rotation), so the mmap path — which
// only ever covers sealed segments — actually has segments to map. Returns
// the shortcut keys and graph fingerprints written.
func writeSegmentedFixture(t *testing.T, dir string) (keys, fps []service.Fingerprint, parts []*partition.Partition) {
	t.Helper()
	s, err := Open(dir, Options{NoSync: true, SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for _, spec := range []string{"grid:6x6", "grid:5x8", "cycle:30", "wheel:25"} {
		g, p, res := buildFixture(t, spec, "blobs:4", 3)
		fp := service.FingerprintGraph(g)
		if err := s.PutGraph(fp, g); err != nil {
			t.Fatal(err)
		}
		key := service.ShortcutKey(fp, p, shortcut.Options{})
		if err := s.PutShortcut(key, fp, p, shortcut.Options{}, res, time.Millisecond); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
		fps = append(fps, fp)
		parts = append(parts, p)
	}
	if st := s.OpenStats(); st.Segments < 3 {
		t.Fatalf("fixture produced %d segments, want >= 3 so sealed segments exist", st.Segments)
	}
	return keys, fps, parts
}

// TestMmapReadAtEquivalence opens the same directory with and without mmap
// and asserts the two stores are observationally identical: same record
// index, byte-identical payloads, same decoded shortcuts. This is the
// contract that lets -mmap=false exist as a pure fallback switch.
func TestMmapReadAtEquivalence(t *testing.T) {
	dir := t.TempDir()
	keys, fps, parts := writeSegmentedFixture(t, dir)

	mm, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	pr, err := Open(dir, Options{NoSync: true, NoMmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Close()

	if got := mm.OpenStats().MappedSegments; got == 0 {
		t.Fatal("mmap store mapped no segments; equivalence test would compare pread to pread")
	}
	if got := pr.OpenStats().MappedSegments; got != 0 {
		t.Fatalf("NoMmap store mapped %d segments, want 0", got)
	}

	ra, rb := mm.Records(), pr.Records()
	if len(ra) != len(rb) {
		t.Fatalf("record counts differ: mmap %d, pread %d", len(ra), len(rb))
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("record %d differs: mmap %+v, pread %+v", i, ra[i], rb[i])
		}
	}
	for i, fp := range fps {
		pa, oka, erra := mm.GraphPayload(fp)
		pb, okb, errb := pr.GraphPayload(fp)
		if !oka || !okb || erra != nil || errb != nil {
			t.Fatalf("graph %d payload: mmap ok=%v err=%v, pread ok=%v err=%v", i, oka, erra, okb, errb)
		}
		if !bytes.Equal(pa, pb) {
			t.Errorf("graph %d payload bytes differ between mmap and pread", i)
		}
		sa, oka, erra := mm.ShortcutPayload(keys[i])
		sb, okb, errb := pr.ShortcutPayload(keys[i])
		if !oka || !okb || erra != nil || errb != nil {
			t.Fatalf("shortcut %d payload: mmap ok=%v err=%v, pread ok=%v err=%v", i, oka, erra, okb, errb)
		}
		if !bytes.Equal(sa, sb) {
			t.Errorf("shortcut %d payload bytes differ between mmap and pread", i)
		}

		ga, _, _ := mm.GetGraph(fp)
		gb, _, _ := pr.GetGraph(fp)
		resa, dura, oka2, erra2 := mm.GetShortcut(keys[i], ga, parts[i])
		resb, durb, okb2, errb2 := pr.GetShortcut(keys[i], gb, parts[i])
		if !oka2 || !okb2 || erra2 != nil || errb2 != nil {
			t.Fatalf("shortcut %d decode: mmap ok=%v err=%v, pread ok=%v err=%v", i, oka2, erra2, okb2, errb2)
		}
		if dura != durb {
			t.Errorf("shortcut %d build time differs: %v vs %v", i, dura, durb)
		}
		if !sameCanonicalH(canonicalH(resa.Shortcut), canonicalH(resb.Shortcut)) {
			t.Errorf("shortcut %d decoded H sets differ between mmap and pread", i)
		}
	}
}

// TestTornTailRepairWithMmap tears bytes off the active tail of a
// multi-segment store and reopens with mapping enabled: the sealed
// segments map and serve, the torn record is dropped, and the repaired
// store accepts appends.
func TestTornTailRepairWithMmap(t *testing.T) {
	dir := t.TempDir()
	keys, fps, _ := writeSegmentedFixture(t, dir)
	segs := segFiles(t, dir)
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-5); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.OpenStats()
	if st.TruncatedBytes == 0 {
		t.Error("open repaired nothing, want a truncated tail")
	}
	if st.MappedSegments == 0 {
		t.Error("no segments mapped after repair")
	}
	// The last-written record died with the tail; everything in sealed
	// segments serves fine.
	if _, ok, err := s.GetGraph(fps[0]); !ok || err != nil {
		t.Errorf("sealed-segment graph lost: ok=%v err=%v", ok, err)
	}
	if _, ok, err := s.ShortcutPayload(keys[0]); !ok || err != nil {
		t.Errorf("sealed-segment shortcut payload lost: ok=%v err=%v", ok, err)
	}
	g, _, err := cli.ParseGraph("cycle:12", 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.PutGraph(service.FingerprintGraph(g), g); err != nil {
		t.Fatalf("append after torn-tail repair: %v", err)
	}
}

// TestFlippedCRCSealedSegmentWithMmap corrupts a record checksum inside a
// segment that will be sealed and mapped, and asserts replay drops exactly
// that record while zero-copy reads of its mapped neighbors still work —
// the open-time CRC pass is what licenses skipping per-read checksums.
func TestFlippedCRCSealedSegmentWithMmap(t *testing.T) {
	dir := t.TempDir()
	keys, fps, _ := writeSegmentedFixture(t, dir)
	segs := segFiles(t, dir)
	first := segs[0]
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a CRC byte of the first frame (header layout: kind byte, key,
	// length, CRC at offsets 13..16).
	data[len(segMagic)+14] ^= 0xff
	if err := os.WriteFile(first, data, 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.OpenStats()
	if st.CorruptSkipped != 1 {
		t.Errorf("CorruptSkipped = %d, want 1", st.CorruptSkipped)
	}
	if st.MappedSegments == 0 {
		t.Error("corrupt sealed segment prevented mapping entirely")
	}
	// The first record written was fps[0]'s graph; it must be gone while
	// later records — including ones in the same mapped segment — serve.
	if _, ok, _ := s.GetGraph(fps[0]); ok {
		t.Error("checksum-corrupt record still live")
	}
	live := 0
	for i := 1; i < len(fps); i++ {
		if _, ok, err := s.GetGraph(fps[i]); ok && err == nil {
			live++
		}
	}
	if live != len(fps)-1 {
		t.Errorf("%d of %d later graphs live, want all", live, len(fps)-1)
	}
	for i := 1; i < len(keys); i++ {
		if _, ok, err := s.ShortcutPayload(keys[i]); !ok || err != nil {
			t.Errorf("shortcut %d payload: ok=%v err=%v", i, ok, err)
		}
	}
}
