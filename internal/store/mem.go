package store

import (
	"io/fs"
	"sync"

	"locshort/internal/service"
)

// Mem is the ephemeral in-memory backend: the full Backend contract over
// plain maps, with nothing on disk. It serves two roles — `-store=mem` for
// a locshortd that wants store semantics (dedup, tombstones, peer
// inventory) without a data directory, and a fast substrate for tests. It
// stores the same canonical record payloads as the durable backends and
// decodes them on read, so content verification is byte-for-byte identical;
// only durability differs (everything is lost at Close/process exit).
//
// Mem reclaims deleted payloads eagerly and therefore does not implement
// Compactor.
type Mem struct {
	kvCore
}

// OpenMem returns a fresh, empty in-memory backend.
func OpenMem() *Mem {
	m := &Mem{}
	m.kvCore = newKVCore(KindMem, &memPayloads{m: make(map[indexKey][]byte)})
	return m
}

// Dir returns "" — the in-memory backend has no on-disk presence.
func (m *Mem) Dir() string { return "" }

// memPayloads is Mem's payloadStore: a mutex-guarded map of defensive
// copies. get returns the stored slice directly; callers must treat record
// payloads as read-only (the Backend contract already demands this for the
// zero-copy segment store).
type memPayloads struct {
	mu sync.RWMutex
	m  map[indexKey][]byte
}

func (p *memPayloads) put(kind byte, key service.Fingerprint, payload []byte) error {
	cp := append([]byte(nil), payload...)
	p.mu.Lock()
	p.m[indexKey{kind: kind, key: key}] = cp
	p.mu.Unlock()
	return nil
}

func (p *memPayloads) get(kind byte, key service.Fingerprint) ([]byte, error) {
	p.mu.RLock()
	payload, ok := p.m[indexKey{kind: kind, key: key}]
	p.mu.RUnlock()
	if !ok {
		return nil, fs.ErrNotExist
	}
	return payload, nil
}

func (p *memPayloads) del(kind byte, key service.Fingerprint) error {
	p.mu.Lock()
	delete(p.m, indexKey{kind: kind, key: key})
	p.mu.Unlock()
	return nil
}

func (p *memPayloads) close() error { return nil }

var _ Backend = (*Mem)(nil)
