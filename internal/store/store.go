package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"locshort/internal/graph"
	"locshort/internal/jobs"
	"locshort/internal/obs"
	"locshort/internal/partition"
	"locshort/internal/service"
	"locshort/internal/shortcut"
)

// On-disk layout. A store directory holds numbered append-only segment
// files:
//
//	<dir>/000001.seg
//	<dir>/000002.seg
//	...
//
// Each segment starts with an 8-byte magic ("LSSTOR01") and then a sequence
// of framed records:
//
//	offset  size  field
//	0       1     kind: 'G' graph, 'P' partition, 'S' shortcut,
//	              'J' async job record, 'T' graph tombstone
//	1       8     key (big-endian content fingerprint)
//	9       4     payload length (big-endian)
//	13      4     CRC-32C over kind ‖ key ‖ length ‖ payload
//	17      n     payload (see encode.go)
//
// Records are appended to the highest-numbered segment and fsynced (unless
// Options.NoSync); a segment past Options.SegmentBytes is retired and a new
// one started. The newest record for a (kind, key) pair wins on replay, and
// a tombstone hides the graph record and every shortcut record whose
// payload references that graph fingerprint. Compaction (GC) rewrites the
// live records into a fresh segment via write-tmp-then-rename and deletes
// the old files afterwards, so a crash at any point leaves either the old
// set, both (replayed old-to-new to the same index), or the new set.
//
// Crash tolerance on open: a record that extends past the end of the last
// segment — the signature of a crash mid-append — is truncated away, and a
// record whose checksum does not match its frame is skipped (the frame
// length still locates the next record). Both are counted in OpenStats.
const (
	segMagic     = "LSSTOR01"
	frameHdrSize = 17
	gcTmpName    = "gc.seg.tmp"

	kindGraph     = 'G'
	kindPartition = 'P'
	kindShortcut  = 'S'
	kindJob       = 'J'
	kindTombstone = 'T'
)

// maxRecordBytes bounds a single record frame; anything larger is treated
// as corruption rather than allocated.
const maxRecordBytes = 1 << 31

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Options tunes a Store. The zero value selects production defaults.
type Options struct {
	// SegmentBytes retires the active segment once it grows past this
	// size (default 64 MiB).
	SegmentBytes int64
	// NoSync skips the fsync after each append. Throughput for
	// durability: a crash can lose recently acknowledged records, but
	// never corrupts what an earlier sync made durable. Tests and bulk
	// imports use it; daemons should not.
	NoSync bool
	// NoMmap disables memory-mapping sealed segments, forcing every read
	// through the portable pread path (fresh buffer plus a per-read
	// checksum). The default maps sealed segments read-only where the
	// platform supports it and serves payloads as subslices of the
	// mapping — zero-copy — relying on the checksum verification that
	// already happened when each record entered the index: replay for
	// records found at Open, the write path (we computed the CRC) for
	// records this process appended. The active tail segment is never
	// mapped; it stays on the write path untouched.
	NoMmap bool
	// Obs, when non-nil, registers the store's metric families:
	// append/fsync latency histograms, per-kind append and segment
	// rotation counters, and func-backed gauges over OpenStats (segments,
	// bytes, live records by kind) read at scrape time.
	Obs *obs.Registry
	// FS substitutes the filesystem every file operation goes through
	// (default: the real one). The storetest conformance suite injects
	// faults — short writes, failed fsyncs, failed renames, crash
	// schedules — through this seam. A non-os FS disables mmap (sealed
	// segments stay on the pread path, so reads remain observable).
	FS FS
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 64 << 20
	}
	if o.FS == nil {
		o.FS = osFS{}
	}
	return o
}

// OpenStats reports what Open found and repaired.
type OpenStats struct {
	// Segments is the number of segment files.
	Segments int
	// Graphs, Partitions, Shortcuts, Jobs count live records by kind.
	Graphs, Partitions, Shortcuts, Jobs int
	// Bytes is the total size of all segment files.
	Bytes int64
	// MappedSegments counts segments currently served zero-copy from a
	// read-only memory mapping (sealed segments only; zero with
	// Options.NoMmap or on platforms without mmap).
	MappedSegments int
	// CorruptSkipped counts records dropped for checksum mismatch.
	CorruptSkipped int
	// TruncatedBytes counts bytes cut off a torn segment tail.
	TruncatedBytes int64
	// TombstonesApplied counts graph tombstones replayed.
	TombstonesApplied int
}

type indexKey struct {
	kind byte
	key  service.Fingerprint
}

// recordRef locates a live record inside a segment.
type recordRef struct {
	seg     int
	off     int64
	size    int64               // full frame size including header
	graphFP service.Fingerprint // dependency, shortcut records only
	partFP  service.Fingerprint // dependency, shortcut records only
}

type segment struct {
	seq  int
	f    File
	size int64
	// data is the read-only memory mapping of a sealed segment; nil keeps
	// the segment on the pread path (active tail, Options.NoMmap, mmap
	// failure, or an unsupported platform).
	data []byte
}

// Store is a content-addressed, append-only snapshot store for graphs,
// partitions, and built shortcuts, durably keyed by the service layer's
// 64-bit fingerprints. It implements service.Store. All methods are safe
// for concurrent use; a directory must be owned by one Store at a time
// (run locshortctl against a stopped daemon or a copied directory).
type Store struct {
	dir  string
	opts Options
	fs   FS

	// writeMu serializes all mutations (appends, deletes, GC, Close) and
	// is held across disk writes and fsyncs. mu guards the in-memory
	// index, segment table, and sizes, and is held only for short
	// critical sections — never across a sync — so store-first cache-miss
	// reads (GetShortcut) are not stalled behind other requests'
	// persistence. Lock order: writeMu before mu.
	writeMu sync.Mutex

	mu      sync.RWMutex
	segs    map[int]*segment
	active  *segment
	index   map[indexKey]recordRef
	byGraph map[service.Fingerprint]map[service.Fingerprint]struct{} // graphFP -> shortcut keys
	open    OpenStats
	// retired holds mappings of segments GC deleted. Zero-copy payload
	// slices handed out before the GC may still alias them, so they are
	// munmapped only at Close — address space is cheap, dangling reads
	// are not.
	retired [][]byte

	// perms memoizes canonical edge permutations (see permCache).
	perms permCache

	// metrics is nil unless Options.Obs was set.
	metrics *storeMetrics
}

// permCache memoizes canonical edge permutations per graph *instance* —
// deliberately not per fingerprint: two representations of the same
// content (a live representative and its canonical decode, or a re-ingest
// after DeleteGraph with a different edge order) share a fingerprint but
// need different permutations, and a fingerprint key would silently serve
// the wrong one. The map is cleared past a size bound so transient graphs
// (Verify decodes) cannot grow it forever. Shared by every backend that
// translates shortcut payloads.
type permCache struct {
	mu sync.Mutex
	m  map[*graph.Graph]*edgePerm
}

// permCacheLimit bounds the perm memo; engines pin far fewer
// representatives than this, so clearing only ever drops transient
// entries.
const permCacheLimit = 256

// get returns the memoized canonical edge permutation for this exact graph
// instance.
func (pc *permCache) get(g *graph.Graph) *edgePerm {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	p := pc.m[g]
	if p == nil {
		if pc.m == nil || len(pc.m) >= permCacheLimit {
			pc.m = make(map[*graph.Graph]*edgePerm)
		}
		p = newEdgePerm(g)
		pc.m[g] = p
	}
	return p
}

var (
	_ service.Store = (*Store)(nil)
	_ jobs.Store    = (*Store)(nil)
)

// Open opens (creating if necessary) the store rooted at dir, replaying
// every segment into the in-memory index and repairing a torn tail.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := &Store{
		dir:     dir,
		opts:    opts,
		fs:      opts.FS,
		segs:    make(map[int]*segment),
		index:   make(map[indexKey]recordRef),
		byGraph: make(map[service.Fingerprint]map[service.Fingerprint]struct{}),
	}
	// A gc.seg.tmp left by a GC that crashed before its rename is dead
	// weight — replay ignores the name, so without this sweep it would
	// leak disk forever.
	s.fs.Remove(filepath.Join(dir, gcTmpName))
	seqs, err := listSegments(s.fs, dir)
	if err != nil {
		return nil, err
	}
	for _, seq := range seqs {
		if err := s.replaySegment(seq); err != nil {
			s.closeLocked()
			return nil, err
		}
	}
	if len(seqs) > 0 {
		last := s.segs[seqs[len(seqs)-1]]
		if last.size < opts.SegmentBytes {
			s.active = last
		}
	}
	if s.active == nil {
		next := 1
		if len(seqs) > 0 {
			next = seqs[len(seqs)-1] + 1
		}
		if err := s.startSegment(next); err != nil {
			s.closeLocked()
			return nil, err
		}
	}
	// Map the sealed segments (everything but the active tail) now that
	// replay has repaired torn tails — the mapping length is the repaired
	// size. Open is single-threaded, so no lock is needed yet.
	for _, seg := range s.segs {
		if seg != s.active {
			s.mapSealedLocked(seg)
		}
	}
	s.recount()
	if opts.Obs != nil {
		s.metrics = newStoreMetrics(opts.Obs, s)
	}
	return s, nil
}

// listSegments returns the segment sequence numbers in dir, ascending.
func listSegments(fs FS, dir string) ([]int, error) {
	entries, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []int
	for _, e := range entries {
		var seq int
		if _, err := fmt.Sscanf(e.Name(), "%06d.seg", &seq); err == nil &&
			e.Name() == segName(seq) && seq > 0 {
			seqs = append(seqs, seq)
		}
	}
	sort.Ints(seqs)
	return seqs, nil
}

func segName(seq int) string { return fmt.Sprintf("%06d.seg", seq) }

func (s *Store) segPath(seq int) string { return filepath.Join(s.dir, segName(seq)) }

// startSegment creates a fresh active segment with the file header.
// Caller holds writeMu (or is Open's single-threaded setup); the brief
// index-map mutation takes mu itself.
func (s *Store) startSegment(seq int) error {
	f, err := s.fs.OpenFile(s.segPath(seq), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	// On any failure past creation the file must be removed: it was
	// created with O_EXCL, so leaving a husk behind would wedge every
	// rotation retry with EEXIST even after the underlying fault clears
	// (a real bug the errfs fault suite shook out).
	fail := func(err error) error {
		_ = f.Close() // best-effort: the original error must propagate
		s.fs.Remove(s.segPath(seq))
		return err
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		return fail(err)
	}
	if !s.opts.NoSync {
		if err := f.Sync(); err != nil {
			return fail(err)
		}
		s.fs.SyncDir(s.dir)
	}
	seg := &segment{seq: seq, f: f, size: int64(len(segMagic))}
	s.mu.Lock()
	if prev := s.active; prev != nil {
		// The outgoing active segment is sealed from here on: no append
		// will ever touch it again, so its size is final and it can join
		// the zero-copy read path. Rotation is rare (once per
		// SegmentBytes), so the mmap syscall under mu is fine.
		s.mapSealedLocked(prev)
	}
	s.segs[seq] = seg
	s.active = seg
	s.mu.Unlock()
	return nil
}

// mapSealedLocked attaches a read-only memory mapping to a sealed segment.
// Failure — including an unsupported platform, or a segment file that is
// not a plain *os.File because an FS shim is injected — is not an error:
// the segment just stays on the pread fallback. Caller holds mu (or is
// Open's single-threaded setup) and must never map the active segment,
// because the mapping length is fixed at the segment's current size.
func (s *Store) mapSealedLocked(seg *segment) {
	if s.opts.NoMmap || seg.data != nil || seg.size <= 0 {
		return
	}
	osf, ok := seg.f.(*os.File)
	if !ok {
		return
	}
	if data, err := mmapFile(osf, seg.size); err == nil {
		seg.data = data
	}
}

// replaySegment reads one segment into the index, truncating a torn tail
// and skipping checksum-corrupt records.
func (s *Store) replaySegment(seq int) error {
	f, err := s.fs.OpenFile(s.segPath(seq), os.O_RDWR, 0)
	if err != nil {
		return err
	}
	seg := &segment{seq: seq, f: f}
	s.segs[seq] = seg
	info, err := f.Stat()
	if err != nil {
		return err
	}
	size := info.Size()
	if size == 0 {
		// Crash between segment creation and header write: finish the job.
		if _, err := f.Write([]byte(segMagic)); err != nil {
			return err
		}
		seg.size = int64(len(segMagic))
		return nil
	}
	hdr := make([]byte, len(segMagic))
	if _, err := io.ReadFull(f, hdr); err != nil || string(hdr) != segMagic {
		return fmt.Errorf("store: %s: not a segment file (bad magic)", segName(seq))
	}
	off := int64(len(segMagic))
	frame := make([]byte, frameHdrSize)
	truncate := func() error {
		s.open.TruncatedBytes += size - off
		if err := f.Truncate(off); err != nil {
			return err
		}
		seg.size = off
		return nil
	}
	for off < size {
		if size-off < frameHdrSize {
			return truncate()
		}
		if _, err := f.ReadAt(frame, off); err != nil {
			return err
		}
		plen := int64(binary.BigEndian.Uint32(frame[9:]))
		total := frameHdrSize + plen
		if total > maxRecordBytes || off+total > size {
			// A frame that runs past the end of the file is a torn append;
			// an absurd length means the header itself is torn. Either
			// way nothing after this point is trustworthy.
			return truncate()
		}
		payload := make([]byte, plen)
		if _, err := f.ReadAt(payload, off+frameHdrSize); err != nil {
			return err
		}
		crc := crc32.Checksum(frame[:9], crcTable)
		crc = crc32.Update(crc, crcTable, frame[9:13])
		crc = crc32.Update(crc, crcTable, payload)
		if crc != binary.BigEndian.Uint32(frame[13:]) {
			s.open.CorruptSkipped++
			off += total
			continue
		}
		kind := frame[0]
		key := service.Fingerprint(binary.BigEndian.Uint64(frame[1:]))
		ref := recordRef{seg: seq, off: off, size: total}
		switch kind {
		case kindTombstone:
			s.applyTombstone(key)
			s.open.TombstonesApplied++
		case kindShortcut:
			meta, err := parseShortcutMeta(payload)
			if err != nil {
				s.open.CorruptSkipped++
			} else {
				ref.graphFP, ref.partFP = meta.graphFP, meta.partFP
				s.indexPut(kind, key, ref)
			}
		case kindGraph, kindPartition, kindJob:
			s.indexPut(kind, key, ref)
		default:
			s.open.CorruptSkipped++
		}
		off += total
	}
	seg.size = size
	return nil
}

// indexPut installs a live record, newest-wins.
func (s *Store) indexPut(kind byte, key service.Fingerprint, ref recordRef) {
	ik := indexKey{kind: kind, key: key}
	if old, ok := s.index[ik]; ok && kind == kindShortcut {
		s.dropShortcutDep(old.graphFP, key)
	}
	s.index[ik] = ref
	if kind == kindShortcut {
		deps := s.byGraph[ref.graphFP]
		if deps == nil {
			deps = make(map[service.Fingerprint]struct{})
			s.byGraph[ref.graphFP] = deps
		}
		deps[key] = struct{}{}
	}
}

func (s *Store) dropShortcutDep(graphFP, key service.Fingerprint) {
	if deps := s.byGraph[graphFP]; deps != nil {
		delete(deps, key)
		if len(deps) == 0 {
			delete(s.byGraph, graphFP)
		}
	}
}

// applyTombstone removes a graph and its dependent shortcuts from the
// index.
func (s *Store) applyTombstone(graphFP service.Fingerprint) {
	delete(s.index, indexKey{kind: kindGraph, key: graphFP})
	for key := range s.byGraph[graphFP] {
		delete(s.index, indexKey{kind: kindShortcut, key: key})
	}
	delete(s.byGraph, graphFP)
}

// recount refreshes the by-kind counters in OpenStats.
func (s *Store) recount() {
	s.open.Segments = len(s.segs)
	s.open.Graphs, s.open.Partitions, s.open.Shortcuts, s.open.Jobs = 0, 0, 0, 0
	s.open.Bytes = 0
	s.open.MappedSegments = 0
	for _, seg := range s.segs {
		s.open.Bytes += seg.size
		if seg.data != nil {
			s.open.MappedSegments++
		}
	}
	for ik := range s.index {
		switch ik.kind {
		case kindGraph:
			s.open.Graphs++
		case kindPartition:
			s.open.Partitions++
		case kindShortcut:
			s.open.Shortcuts++
		case kindJob:
			s.open.Jobs++
		}
	}
}

// OpenStats returns what Open found, with record counts kept current as
// the store is written.
func (s *Store) OpenStats() OpenStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.recount()
	return s.open
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases every segment file handle and unmaps every segment
// mapping, including mappings GC retired. Appended records are already on
// disk (and fsynced unless NoSync); Close never loses data. Zero-copy
// payload slices handed out by reads become invalid at Close — callers
// must drain readers first, which every daemon shutdown path already does.
func (s *Store) Close() error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closeLocked()
}

func (s *Store) closeLocked() error {
	var first error
	for _, seg := range s.segs {
		if seg.data != nil {
			munmapFile(seg.data)
			seg.data = nil
		}
		if err := seg.f.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, data := range s.retired {
		munmapFile(data)
	}
	s.retired = nil
	s.segs = make(map[int]*segment)
	s.active = nil
	return first
}

// appendRecord frames and durably writes one record to the active segment
// and installs it in the index. Caller holds writeMu (which serializes all
// writers); mu is taken only for the in-memory installation, never across
// the disk write or fsync, so concurrent readers are not stalled by
// persistence.
func (s *Store) appendRecord(kind byte, key service.Fingerprint, payload []byte) error {
	var appendStart time.Time
	if s.metrics != nil {
		appendStart = time.Now()
	}
	s.mu.RLock()
	seg := s.active
	s.mu.RUnlock()
	if seg == nil {
		return errors.New("store: closed")
	}
	// seg.size is only mutated under writeMu, which we hold.
	if seg.size >= s.opts.SegmentBytes {
		if err := s.startSegment(seg.seq + 1); err != nil {
			return err
		}
		if s.metrics != nil {
			s.metrics.rotations.Inc()
		}
		s.mu.RLock()
		seg = s.active
		s.mu.RUnlock()
	}
	frame := make([]byte, frameHdrSize, frameHdrSize+len(payload))
	frame[0] = kind
	binary.BigEndian.PutUint64(frame[1:], uint64(key))
	binary.BigEndian.PutUint32(frame[9:], uint32(len(payload)))
	crc := crc32.Checksum(frame[:9], crcTable)
	crc = crc32.Update(crc, crcTable, frame[9:13])
	crc = crc32.Update(crc, crcTable, payload)
	binary.BigEndian.PutUint32(frame[13:], crc)
	frame = append(frame, payload...)
	ref := recordRef{seg: seg.seq, off: seg.size, size: int64(len(frame))}
	if kind == kindShortcut {
		meta, err := parseShortcutMeta(payload)
		if err != nil {
			return err
		}
		ref.graphFP, ref.partFP = meta.graphFP, meta.partFP
	}
	if _, err := seg.f.WriteAt(frame, seg.size); err != nil {
		return err
	}
	if !s.opts.NoSync {
		var syncStart time.Time
		if s.metrics != nil {
			syncStart = time.Now()
		}
		if err := seg.f.Sync(); err != nil {
			return err
		}
		if s.metrics != nil {
			s.metrics.fsyncSeconds.Observe(time.Since(syncStart))
		}
	}
	s.mu.Lock()
	seg.size += int64(len(frame))
	if kind != kindTombstone {
		s.indexPut(kind, key, ref)
	}
	s.mu.Unlock()
	if s.metrics != nil {
		s.metrics.appendSeconds.Observe(time.Since(appendStart))
		if c, ok := s.metrics.appends[kind]; ok {
			c.Inc()
		}
	}
	return nil
}

// readPayload fetches a live record's payload. Caller holds at least
// s.mu.RLock. On a mapped (sealed) segment the returned slice aliases the
// read-only mapping — zero-copy, no per-read checksum: the frame was
// CRC-verified when the record entered the index (replay at Open, or the
// write path for records this process appended), and the mapping stays
// valid until Close even across a GC (see Store.retired). The pread
// fallback keeps the historical behavior: fresh buffer, checksum
// re-verified on every read.
//
//locshort:hotpath
func (s *Store) readPayload(ref recordRef) ([]byte, error) {
	seg, ok := s.segs[ref.seg]
	if !ok {
		return nil, fmt.Errorf("store: segment %d vanished", ref.seg) //locshort:alloc-ok corruption path
	}
	if seg.data != nil && ref.off+ref.size <= int64(len(seg.data)) {
		// Three-index form so an append by a careless caller reallocates
		// instead of scribbling on the read-only mapping.
		return seg.data[ref.off+frameHdrSize : ref.off+ref.size : ref.off+ref.size], nil
	}
	frame := make([]byte, ref.size)
	if _, err := seg.f.ReadAt(frame, ref.off); err != nil {
		return nil, err
	}
	crc := crc32.Checksum(frame[:9], crcTable)
	crc = crc32.Update(crc, crcTable, frame[9:13])
	crc = crc32.Update(crc, crcTable, frame[frameHdrSize:])
	if crc != binary.BigEndian.Uint32(frame[13:]) {
		//locshort:alloc-ok corruption path: a failed checksum never serves
		return nil, fmt.Errorf("store: record %s/%c: checksum mismatch on read",
			service.Fingerprint(binary.BigEndian.Uint64(frame[1:])), frame[0])
	}
	return frame[frameHdrSize:], nil
}

// checkFrame re-verifies a live record's frame checksum, reading through
// the mapping when one exists (the MAP_SHARED mapping observes the file's
// current bytes, so external corruption is visible through it).
func (s *Store) checkFrame(ref recordRef) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seg, ok := s.segs[ref.seg]
	if !ok {
		return fmt.Errorf("store: segment %d vanished", ref.seg)
	}
	var frame []byte
	if seg.data != nil && ref.off+ref.size <= int64(len(seg.data)) {
		frame = seg.data[ref.off : ref.off+ref.size]
	} else {
		frame = make([]byte, ref.size)
		if _, err := seg.f.ReadAt(frame, ref.off); err != nil {
			return err
		}
	}
	crc := crc32.Checksum(frame[:9], crcTable)
	crc = crc32.Update(crc, crcTable, frame[9:13])
	crc = crc32.Update(crc, crcTable, frame[frameHdrSize:])
	if crc != binary.BigEndian.Uint32(frame[13:]) {
		return fmt.Errorf("store: record %s/%c: checksum mismatch",
			service.Fingerprint(binary.BigEndian.Uint64(frame[1:])), frame[0])
	}
	return nil
}

// perm returns the memoized canonical edge permutation for this exact
// graph instance.
func (s *Store) perm(g *graph.Graph) *edgePerm { return s.perms.get(g) }

// has reports whether a live record exists. Caller may hold writeMu; mu is
// taken briefly.
func (s *Store) has(kind byte, key service.Fingerprint) bool {
	s.mu.RLock()
	_, ok := s.index[indexKey{kind: kind, key: key}]
	s.mu.RUnlock()
	return ok
}

// PutGraph persists g under its content fingerprint; known content is a
// cheap no-op. Implements service.Store.
func (s *Store) PutGraph(fp service.Fingerprint, g *graph.Graph) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.has(kindGraph, fp) {
		return nil
	}
	return s.appendRecord(kindGraph, fp, encodeGraph(g))
}

// EachGraph decodes every live graph record. Implements service.Store.
func (s *Store) EachGraph(fn func(fp service.Fingerprint, g *graph.Graph) error) error {
	s.mu.RLock()
	refs := make(map[service.Fingerprint]recordRef)
	for ik, ref := range s.index {
		if ik.kind == kindGraph {
			refs[ik.key] = ref
		}
	}
	s.mu.RUnlock()
	fps := make([]service.Fingerprint, 0, len(refs))
	for fp := range refs {
		fps = append(fps, fp)
	}
	sort.Slice(fps, func(i, j int) bool { return fps[i] < fps[j] })
	for _, fp := range fps {
		g, err := s.getGraphRef(fp, refs[fp])
		if err != nil {
			return err
		}
		if err := fn(fp, g); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) getGraphRef(fp service.Fingerprint, ref recordRef) (*graph.Graph, error) {
	s.mu.RLock()
	payload, err := s.readPayload(ref)
	s.mu.RUnlock()
	if err != nil {
		return nil, err
	}
	return decodeGraph(payload, fp)
}

// GetGraph decodes the live graph record for fp, if any.
//
//locshort:hotpath
func (s *Store) GetGraph(fp service.Fingerprint) (*graph.Graph, bool, error) {
	s.mu.RLock()
	ref, ok := s.index[indexKey{kind: kindGraph, key: fp}]
	s.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	g, err := s.getGraphRef(fp, ref)
	if err != nil {
		return nil, false, err
	}
	return g, true, nil
}

// GetPartition decodes the live partition record for fp against g,
// validating part connectivity. Used by offline inspection (the serving
// path never needs it: requests carry their partition).
func (s *Store) GetPartition(fp service.Fingerprint, g *graph.Graph) (*partition.Partition, bool, error) {
	s.mu.RLock()
	ref, ok := s.index[indexKey{kind: kindPartition, key: fp}]
	if !ok {
		s.mu.RUnlock()
		return nil, false, nil
	}
	payload, err := s.readPayload(ref)
	s.mu.RUnlock()
	if err != nil {
		return nil, false, err
	}
	p, err := decodePartition(payload, fp, g)
	if err != nil {
		return nil, false, err
	}
	return p, true, nil
}

// PutShortcut persists the partition record (deduplicated) and the shortcut
// record. Implements service.Store. A shortcut whose graph record is no
// longer live is silently dropped: a detached engine persist can race a
// DeleteGraph tombstone, and writing the record after the tombstone would
// resurrect a shortcut whose graph is gone (an orphan that fails Verify).
func (s *Store) PutShortcut(key, graphFP service.Fingerprint, parts *partition.Partition,
	opts shortcut.Options, res *shortcut.Result, buildTime time.Duration) error {

	partFP := service.FingerprintPartition(parts)
	perm := s.perm(res.Shortcut.G)
	payload := encodeShortcut(perm, graphFP, partFP, opts, res, buildTime)
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if !s.has(kindGraph, graphFP) || s.has(kindShortcut, key) {
		return nil
	}
	if !s.has(kindPartition, partFP) {
		if err := s.appendRecord(kindPartition, partFP, encodePartition(parts)); err != nil {
			return err
		}
	}
	return s.appendRecord(kindShortcut, key, payload)
}

// GetShortcut loads and reconstructs the shortcut stored under key against
// the live representative g and the requested partition. Implements
// service.Store.
//
//locshort:hotpath
func (s *Store) GetShortcut(key service.Fingerprint, g *graph.Graph, parts *partition.Partition) (
	*shortcut.Result, time.Duration, bool, error) {

	s.mu.RLock()
	ref, ok := s.index[indexKey{kind: kindShortcut, key: key}]
	if !ok {
		s.mu.RUnlock()
		return nil, 0, false, nil
	}
	payload, err := s.readPayload(ref)
	s.mu.RUnlock()
	if err != nil {
		return nil, 0, false, err
	}
	res, bt, err := decodeShortcut(payload, key, s.perm(g), g, parts)
	if err != nil {
		return nil, 0, false, err
	}
	return res, bt, true, nil
}

// PutJob durably writes (or supersedes) an async job record under its job
// ID. Implements jobs.Store. Unlike the content-addressed kinds the
// payload mutates over a job's lifecycle, so every call appends; the
// newest record wins on replay and GC compacts the superseded ones.
func (s *Store) PutJob(id uint64, payload []byte) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return s.appendRecord(kindJob, service.Fingerprint(id), payload)
}

// GetJob returns the live job record payload for id, if any.
//
//locshort:hotpath
func (s *Store) GetJob(id uint64) ([]byte, bool, error) {
	s.mu.RLock()
	ref, ok := s.index[indexKey{kind: kindJob, key: service.Fingerprint(id)}]
	if !ok {
		s.mu.RUnlock()
		return nil, false, nil
	}
	payload, err := s.readPayload(ref)
	s.mu.RUnlock()
	if err != nil {
		return nil, false, err
	}
	return payload, true, nil
}

// EachJob calls fn for every live job record, ascending by ID. Implements
// jobs.Store (used by Manager.Recover on warm start).
func (s *Store) EachJob(fn func(id uint64, payload []byte) error) error {
	s.mu.RLock()
	refs := make(map[service.Fingerprint]recordRef)
	for ik, ref := range s.index {
		if ik.kind == kindJob {
			refs[ik.key] = ref
		}
	}
	s.mu.RUnlock()
	ids := make([]service.Fingerprint, 0, len(refs))
	for id := range refs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		s.mu.RLock()
		payload, err := s.readPayload(refs[id])
		s.mu.RUnlock()
		if err != nil {
			return err
		}
		if err := fn(uint64(id), payload); err != nil {
			return err
		}
	}
	return nil
}

// DeleteGraph appends a tombstone hiding the graph record and every
// shortcut built on it; deleting an absent graph writes nothing.
// Implements service.Store. Space is reclaimed by the next GC.
func (s *Store) DeleteGraph(fp service.Fingerprint) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.RLock()
	_, haveGraph := s.index[indexKey{kind: kindGraph, key: fp}]
	haveDeps := len(s.byGraph[fp]) > 0
	s.mu.RUnlock()
	if !haveGraph && !haveDeps {
		return nil
	}
	if err := s.appendRecord(kindTombstone, fp, nil); err != nil {
		return err
	}
	s.mu.Lock()
	s.applyTombstone(fp)
	s.mu.Unlock()
	return nil
}

// RecordInfo describes one live record for listings.
type RecordInfo struct {
	// Kind is "graph", "partition", "shortcut", or "job".
	Kind string
	Key  service.Fingerprint
	// Segment and Offset locate the record on disk; Bytes is the framed
	// size.
	Segment int
	Offset  int64
	Bytes   int64
	// GraphFP and PartitionFP are the dependencies of a shortcut record
	// (zero otherwise).
	GraphFP     service.Fingerprint
	PartitionFP service.Fingerprint
}

func kindName(kind byte) string {
	switch kind {
	case kindGraph:
		return "graph"
	case kindPartition:
		return "partition"
	case kindShortcut:
		return "shortcut"
	case kindJob:
		return "job"
	}
	return fmt.Sprintf("kind(%c)", kind)
}

// Records lists the live records sorted by kind then key.
func (s *Store) Records() []RecordInfo {
	s.mu.RLock()
	out := make([]RecordInfo, 0, len(s.index))
	for ik, ref := range s.index {
		out = append(out, RecordInfo{
			Kind:        kindName(ik.kind),
			Key:         ik.key,
			Segment:     ref.seg,
			Offset:      ref.off,
			Bytes:       ref.size,
			GraphFP:     ref.graphFP,
			PartitionFP: ref.partFP,
		})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// Problem is one verification failure.
type Problem struct {
	Kind string
	Key  service.Fingerprint
	Err  error
}

func (p Problem) String() string { return fmt.Sprintf("%s %s: %v", p.Kind, p.Key, p.Err) }

// Verify re-reads and fully decodes every live record: frame checksums,
// payload-to-key content hashes, structural validation (graph adjacency,
// partition connectedness, shortcut edge sets against their tree), and
// shortcut key re-derivation from the stored inputs. It returns one
// Problem per failing record; an empty slice means the store is clean.
func (s *Store) Verify() []Problem {
	var problems []Problem
	bad := func(kind byte, key service.Fingerprint, err error) {
		problems = append(problems, Problem{Kind: kindName(kind), Key: key, Err: err})
	}
	s.mu.RLock()
	type rec struct {
		ik  indexKey
		ref recordRef
	}
	recs := make([]rec, 0, len(s.index))
	for ik, ref := range s.index {
		recs = append(recs, rec{ik, ref})
	}
	s.mu.RUnlock()
	sort.Slice(recs, func(i, j int) bool {
		if recs[i].ik.kind != recs[j].ik.kind {
			return recs[i].ik.kind < recs[j].ik.kind
		}
		return recs[i].ik.key < recs[j].ik.key
	})
	graphs := make(map[service.Fingerprint]*graph.Graph)
	for _, r := range recs {
		// Mapped reads skip the per-read checksum, so Verify re-checks
		// every frame explicitly — its whole point is catching corruption
		// that happened after the record was indexed.
		if err := s.checkFrame(r.ref); err != nil {
			bad(r.ik.kind, r.ik.key, err)
			continue
		}
		s.mu.RLock()
		payload, err := s.readPayload(r.ref)
		s.mu.RUnlock()
		if err != nil {
			bad(r.ik.kind, r.ik.key, err)
			continue
		}
		switch r.ik.kind {
		case kindGraph:
			g, err := decodeGraph(payload, r.ik.key)
			if err != nil {
				bad(r.ik.kind, r.ik.key, err)
				continue
			}
			if err := g.Validate(); err != nil {
				bad(r.ik.kind, r.ik.key, err)
				continue
			}
			graphs[r.ik.key] = g
		case kindPartition:
			if len(payload) < 1 || payload[0] != partitionPayloadVersion {
				bad(r.ik.kind, r.ik.key, fmt.Errorf("bad payload version"))
			} else if got := service.FingerprintBytes(payload[1:]); got != r.ik.key {
				bad(r.ik.kind, r.ik.key, fmt.Errorf("content hash mismatch"))
			}
		case kindShortcut:
			g, ok := graphs[r.ref.graphFP]
			if !ok {
				bad(r.ik.kind, r.ik.key, fmt.Errorf("references missing graph %s", r.ref.graphFP))
				continue
			}
			s.mu.RLock()
			pref, ok := s.index[indexKey{kind: kindPartition, key: r.ref.partFP}]
			s.mu.RUnlock()
			if !ok {
				bad(r.ik.kind, r.ik.key, fmt.Errorf("references missing partition %s", r.ref.partFP))
				continue
			}
			s.mu.RLock()
			ppay, err := s.readPayload(pref)
			s.mu.RUnlock()
			if err != nil {
				bad(r.ik.kind, r.ik.key, err)
				continue
			}
			parts, err := decodePartition(ppay, r.ref.partFP, g)
			if err != nil {
				bad(r.ik.kind, r.ik.key, err)
				continue
			}
			if _, _, err := decodeShortcut(payload, r.ik.key, s.perm(g), g, parts); err != nil {
				bad(r.ik.kind, r.ik.key, err)
			}
		case kindJob:
			// Job records are not content-addressed (random IDs, mutable
			// state), so verification is structural: the payload decodes
			// and its embedded ID matches the record key.
			rec, err := jobs.DecodeRecord(payload)
			if err != nil {
				bad(r.ik.kind, r.ik.key, err)
				continue
			}
			if uint64(rec.ID) != uint64(r.ik.key) {
				bad(r.ik.kind, r.ik.key,
					fmt.Errorf("record claims job id %s", rec.ID))
			}
		}
	}
	return problems
}

// GCStats reports what a compaction did.
type GCStats struct {
	// LiveRecords and LiveBytes are what the compacted segment holds.
	LiveRecords int
	LiveBytes   int64
	// DroppedRecords counts live index entries not carried over
	// (partitions no live shortcut references). Dead on-disk records —
	// superseded duplicates, tombstoned graphs and shortcuts, the
	// tombstones themselves — were never in the live index; the space
	// they held shows up in ReclaimedBytes.
	DroppedRecords int
	// ReclaimedBytes is the size difference between the old segment set
	// and the compacted one.
	ReclaimedBytes int64
	// Segments is the segment-file count after compaction.
	Segments int
}

// GC compacts the store: every live record — minus partitions no live
// shortcut references — is copied into a fresh segment written to a
// temporary file and atomically renamed into place, then the old segments
// are deleted. A crash before the rename leaves the old set; a crash after
// it leaves old and new coexisting, which replays to the identical index
// (newest record wins, and tombstones in old segments apply before the
// compacted segment is replayed).
func (s *Store) GC() (GCStats, error) {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	var st GCStats

	// Partitions still referenced by a live shortcut.
	wanted := make(map[service.Fingerprint]bool)
	for ik, ref := range s.index {
		if ik.kind == kindShortcut {
			wanted[ref.partFP] = true
		}
	}
	type keep struct {
		ik  indexKey
		ref recordRef
	}
	var keeps []keep
	totalRecords := 0
	for ik, ref := range s.index {
		totalRecords++
		if ik.kind == kindPartition && !wanted[ik.key] {
			continue
		}
		keeps = append(keeps, keep{ik, ref})
	}
	// Deterministic layout: order by kind then key so identical content
	// compacts to identical bytes.
	sort.Slice(keeps, func(i, j int) bool {
		if keeps[i].ik.kind != keeps[j].ik.kind {
			return keeps[i].ik.kind < keeps[j].ik.kind
		}
		return keeps[i].ik.key < keeps[j].ik.key
	})

	nextSeq := 1
	for seq := range s.segs {
		if seq >= nextSeq {
			nextSeq = seq + 1
		}
	}
	tmpPath := filepath.Join(s.dir, gcTmpName)
	tmp, err := s.fs.OpenFile(tmpPath, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return st, err
	}
	defer s.fs.Remove(tmpPath)
	if _, err := tmp.Write([]byte(segMagic)); err != nil {
		_ = tmp.Close() // best-effort: the write error must propagate
		return st, err
	}
	newRefs := make(map[indexKey]recordRef, len(keeps))
	off := int64(len(segMagic))
	for _, k := range keeps {
		seg, ok := s.segs[k.ref.seg]
		if !ok {
			_ = tmp.Close() // best-effort: the lookup error must propagate
			return st, fmt.Errorf("store: segment %d vanished during gc", k.ref.seg)
		}
		frame := make([]byte, k.ref.size)
		if _, err := seg.f.ReadAt(frame, k.ref.off); err != nil {
			_ = tmp.Close() // best-effort: the read error must propagate
			return st, err
		}
		if _, err := tmp.Write(frame); err != nil {
			_ = tmp.Close() // best-effort: the write error must propagate
			return st, err
		}
		ref := k.ref
		ref.seg, ref.off = nextSeq, off
		newRefs[k.ik] = ref
		off += k.ref.size
		st.LiveRecords++
	}
	if err := tmp.Sync(); err != nil {
		_ = tmp.Close() // best-effort: the fsync error must propagate
		return st, err
	}
	oldBytes := int64(0)
	for _, seg := range s.segs {
		oldBytes += seg.size
	}
	if err := s.fs.Rename(tmpPath, s.segPath(nextSeq)); err != nil {
		_ = tmp.Close() // best-effort: the rename error must propagate
		return st, err
	}
	s.fs.SyncDir(s.dir)
	// Point of no return: the compacted segment is durable. Retire the
	// old files and swap the index over. Mappings of the deleted segments
	// move to the graveyard instead of being unmapped: concurrent readers
	// may still hold zero-copy slices into them, and an unlinked file's
	// mapping stays valid until munmap at Close.
	for seq, seg := range s.segs {
		if seg.data != nil {
			s.retired = append(s.retired, seg.data)
			seg.data = nil
		}
		_ = seg.f.Close() // best-effort: the compacted segment is already durable
		s.fs.Remove(s.segPath(seq))
		delete(s.segs, seq)
	}
	s.fs.SyncDir(s.dir)
	newSeg := &segment{seq: nextSeq, f: tmp, size: off}
	s.segs[nextSeq] = newSeg
	s.active = newSeg
	s.index = newRefs
	s.byGraph = make(map[service.Fingerprint]map[service.Fingerprint]struct{})
	for ik, ref := range newRefs {
		if ik.kind == kindShortcut {
			deps := s.byGraph[ref.graphFP]
			if deps == nil {
				deps = make(map[service.Fingerprint]struct{})
				s.byGraph[ref.graphFP] = deps
			}
			deps[ik.key] = struct{}{}
		}
	}
	st.LiveBytes = off
	st.DroppedRecords = totalRecords - st.LiveRecords
	st.ReclaimedBytes = oldBytes - off
	st.Segments = len(s.segs)
	s.open.CorruptSkipped, s.open.TruncatedBytes, s.open.TombstonesApplied = 0, 0, 0
	s.recount()
	return st, nil
}
