// Package store is the durable snapshot store behind locshortd's -data
// flag: a content-addressed, append-only segment log that persists graphs,
// partitions, and built shortcuts under the service layer's 64-bit
// fingerprints, so the ~50x warm-over-cold advantage of the shortcut cache
// survives restarts instead of being rebuilt in a cold-build stampede.
//
// The design leans on the same observation the serving layer does
// (DESIGN.md §4, following the shortcut-framework treatment of
// Ghaffari–Haeupler, PODC 2021): a shortcut is a pure function of
// (graph, partition, build options), so its content address is a durable
// identity. Graph and partition payloads are exactly the canonical byte
// encodings their fingerprints hash (graph.AppendCanonical,
// service.AppendPartitionCanonical) — the store is self-verifying: FNV-1a
// over the payload is the record key. Shortcut payloads express every edge
// ID in canonical edge order so they decode correctly against whatever
// representative graph a future process holds.
//
// The store also carries the async job records of internal/jobs ('J'
// frames in the same segments). Those are the one non-content-addressed
// kind — keyed by random job ID, superseded in place as the job's state
// advances — and they are what lets a locshortd restart re-enqueue
// accepted-but-unfinished work (DESIGN.md §7).
//
// Durability model: framed records with CRC-32C checksums appended to
// numbered segment files, fsync per append, newest-record-wins replay,
// tombstones for graph deletion, torn-tail truncation and corrupt-record
// skipping on open, and write-tmp-then-rename compaction (GC). See the
// format comment in store.go and OPERATIONS.md for the operator runbook
// (locshortctl ls / inspect / verify / gc).
//
// The full contract the layers above depend on is written down as the
// Backend interface (backend.go) and enforced by the storetest
// conformance suite (internal/store/storetest). Three implementations
// pass it: the append-only segment store (Store, the reference and
// default), the ephemeral in-memory backend (Mem), and the S3-style
// object-directory tier (ObjDir, one atomically-written file per
// record). OpenBackend selects among them — the daemons' -store flag.
// Space reclamation is the optional Compactor capability, not part of
// Backend. See DESIGN.md §11.
//
// # Role in the DAG
//
// Depends on internal/graph, internal/partition, internal/tree,
// internal/shortcut, internal/service (for the fingerprint scheme and
// the Store interface it implements — the interface lives in service so
// the dependency points downward), and internal/jobs (record decoding
// for verification; store likewise implements jobs.Store). Consumed by
// cmd/locshortd and cmd/locshortctl.
//
// The package is inside the checked-error scope policed by the
// internal/analysis lint suite (DESIGN.md §12): Close/Sync/Flush/Encode
// error results may not be silently discarded — check them or make the
// discard explicit with `_ =`. cmd/locshortlint enforces this in CI.
package store
