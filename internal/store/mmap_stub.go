//go:build !unix

package store

import (
	"errors"
	"os"
)

// errNoMmap keeps non-unix platforms on the portable pread path: mapSealed
// treats any mmapFile error as "stay unmapped", so the store works the same
// everywhere, just without the zero-copy read path.
var errNoMmap = errors.New("store: mmap unsupported on this platform")

func mmapFile(f *os.File, size int64) ([]byte, error) { return nil, errNoMmap }

func munmapFile(b []byte) error { return nil }
