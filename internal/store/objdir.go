package store

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"locshort/internal/service"
)

// ObjDir is the S3-style object-directory backend: one file per live
// record, named by content key, grouped into one directory per record kind:
//
//	<dir>/graphs/<%016x>.obj
//	<dir>/partitions/<%016x>.obj
//	<dir>/shortcuts/<%016x>.obj
//	<dir>/jobs/<%016x>.obj
//
// Each object holds exactly the canonical record payload the segment store
// frames, so the two tiers are byte-compatible at the record level and a
// directory of objects maps one-to-one onto object-store keys — the shape
// intended for cold shortcut archival, where records are written once,
// fetched rarely, and individually. Writes go through a same-directory
// temp file, fsync, and atomic rename (then a directory fsync), so an
// object is always either absent or complete; a crash can never leave a
// torn object visible. Deletes remove the graph object before its
// dependent shortcut objects, and Open sweeps the orphans a crash in that
// window leaves behind, along with stranded *.tmp files.
//
// ObjDir implements Compactor: GC removes partition objects no live
// shortcut references plus any unindexed stragglers in its directories.
type ObjDir struct {
	kvCore
	dir  string
	fsys FS
}

const (
	objSuffix    = ".obj"
	objTmpSuffix = ".tmp"
)

// objKindDirs maps record kind bytes to per-kind directory names.
var objKindDirs = map[byte]string{
	kindGraph:     "graphs",
	kindPartition: "partitions",
	kindShortcut:  "shortcuts",
	kindJob:       "jobs",
}

// objScanOrder lists kinds with graphs first so the orphan sweep can check
// shortcut dependencies against an already-populated graph index.
var objScanOrder = []byte{kindGraph, kindPartition, kindJob, kindShortcut}

// OpenObjDir opens (creating if needed) an object-directory backend rooted
// at dir. It rebuilds the live index by listing the kind directories,
// removes stranded temp files, and sweeps objects a crashed delete
// orphaned; swept objects are counted in OpenStats.CorruptSkipped.
func OpenObjDir(dir string, opts Options) (*ObjDir, error) {
	opts = opts.withDefaults()
	o := &ObjDir{dir: dir, fsys: opts.FS}
	o.kvCore = newKVCore(KindObjDir, &dirPayloads{
		dir:    dir,
		fsys:   opts.FS,
		noSync: opts.NoSync,
	})
	for _, kind := range objScanOrder {
		if err := o.fsys.MkdirAll(filepath.Join(dir, objKindDirs[kind]), 0o755); err != nil {
			return nil, fmt.Errorf("store: objdir %s: %w", dir, err)
		}
		if err := o.scanKind(kind); err != nil {
			return nil, err
		}
	}
	return o, nil
}

// scanKind indexes one kind directory, deleting temp files and (for
// shortcuts) objects that fail structural checks or reference a graph that
// no longer exists.
func (o *ObjDir) scanKind(kind byte) error {
	kdir := filepath.Join(o.dir, objKindDirs[kind])
	entries, err := o.fsys.ReadDir(kdir)
	if err != nil {
		return fmt.Errorf("store: objdir %s: %w", o.dir, err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasSuffix(name, objTmpSuffix) {
			if err := o.fsys.Remove(filepath.Join(kdir, name)); err != nil {
				return fmt.Errorf("store: objdir %s: sweeping %s: %w", o.dir, name, err)
			}
			continue
		}
		key, ok := parseObjName(name)
		if !ok {
			continue // not ours; leave it alone
		}
		info, err := e.Info()
		if err != nil {
			return fmt.Errorf("store: objdir %s: %w", o.dir, err)
		}
		meta := kvMeta{size: info.Size()}
		if kind == kindShortcut {
			payload, err := o.ps.get(kindShortcut, key)
			drop := ""
			if err != nil {
				return fmt.Errorf("store: objdir %s: %w", o.dir, err)
			}
			if sm, err := parseShortcutMeta(payload); err != nil {
				drop = "undecodable"
			} else if !o.has(kindGraph, sm.graphFP) {
				drop = "orphaned"
			} else {
				meta.graphFP, meta.partFP = sm.graphFP, sm.partFP
			}
			if drop != "" {
				if err := o.fsys.Remove(filepath.Join(kdir, name)); err != nil {
					return fmt.Errorf("store: objdir %s: sweeping %s shortcut %s: %w", o.dir, drop, name, err)
				}
				o.open.CorruptSkipped++
				continue
			}
		}
		o.mu.Lock()
		o.indexPutLocked(kind, key, meta)
		o.mu.Unlock()
	}
	return nil
}

// Dir returns the backend's root directory.
func (o *ObjDir) Dir() string { return o.dir }

// GC reclaims space: partition objects no live shortcut references are
// dropped from the index and deleted, and any file in the kind directories
// that is not a live record (stranded temps, objects orphaned by a crashed
// delete) is removed. Always safe to run; concurrent readers fall to a
// miss, never a wrong answer.
func (o *ObjDir) GC() (GCStats, error) {
	o.writeMu.Lock()
	defer o.writeMu.Unlock()

	var stats GCStats
	o.mu.Lock()
	if o.closed {
		o.mu.Unlock()
		return stats, o.errClosed()
	}
	wanted := make(map[service.Fingerprint]struct{})
	for ik, meta := range o.index {
		if ik.kind == kindShortcut {
			wanted[meta.partFP] = struct{}{}
		}
	}
	for ik := range o.index {
		if ik.kind == kindPartition {
			if _, ok := wanted[ik.key]; !ok {
				delete(o.index, ik)
			}
		}
	}
	for _, meta := range o.index {
		stats.LiveRecords++
		stats.LiveBytes += meta.size
	}
	o.mu.Unlock()

	// With the index settled, every file not backing a live record goes.
	for kind, kdir := range objKindDirs {
		entries, err := o.fsys.ReadDir(filepath.Join(o.dir, kdir))
		if err != nil {
			return stats, fmt.Errorf("store: objdir %s: %w", o.dir, err)
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			name := e.Name()
			live := false
			if key, ok := parseObjName(name); ok {
				live = o.has(kind, key)
			}
			if live {
				continue
			}
			var size int64
			if info, err := e.Info(); err == nil {
				size = info.Size()
			}
			if err := o.fsys.Remove(filepath.Join(o.dir, kdir, name)); err != nil {
				return stats, fmt.Errorf("store: objdir %s: gc %s: %w", o.dir, name, err)
			}
			if strings.HasSuffix(name, objSuffix) {
				stats.DroppedRecords++
			}
			stats.ReclaimedBytes += size
		}
	}
	return stats, nil
}

// parseObjName extracts the record key from an object file name of the form
// "%016x.obj".
func parseObjName(name string) (service.Fingerprint, bool) {
	hex, ok := strings.CutSuffix(name, objSuffix)
	if !ok || len(hex) != 16 {
		return 0, false
	}
	var key uint64
	for i := 0; i < len(hex); i++ {
		c := hex[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		key = key<<4 | d
	}
	return service.Fingerprint(key), true
}

// dirPayloads is ObjDir's payloadStore: one file per record, written via a
// same-directory temp file + fsync + rename so readers and crashes only
// ever see complete objects.
type dirPayloads struct {
	dir    string
	fsys   FS
	noSync bool
}

func (d *dirPayloads) path(kind byte, key service.Fingerprint) string {
	return filepath.Join(d.dir, objKindDirs[kind], fmt.Sprintf("%016x%s", uint64(key), objSuffix))
}

func (d *dirPayloads) put(kind byte, key service.Fingerprint, payload []byte) error {
	path := d.path(kind, key)
	tmp := path + objTmpSuffix
	f, err := d.fsys.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		_ = f.Close() // best-effort: the original error must propagate
		d.fsys.Remove(tmp)
		return err
	}
	if n, err := f.Write(payload); err != nil {
		return fail(err)
	} else if n != len(payload) {
		return fail(io.ErrShortWrite)
	}
	if !d.noSync {
		if err := f.Sync(); err != nil {
			return fail(err)
		}
	}
	if err := f.Close(); err != nil {
		d.fsys.Remove(tmp)
		return err
	}
	if err := d.fsys.Rename(tmp, path); err != nil {
		d.fsys.Remove(tmp)
		return err
	}
	if !d.noSync {
		return d.fsys.SyncDir(filepath.Dir(path))
	}
	return nil
}

func (d *dirPayloads) get(kind byte, key service.Fingerprint) ([]byte, error) {
	f, err := d.fsys.OpenFile(d.path(kind, key), os.O_RDONLY, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fs.ErrNotExist
		}
		return nil, err
	}
	payload, err := io.ReadAll(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return payload, err
}

func (d *dirPayloads) del(kind byte, key service.Fingerprint) error {
	err := d.fsys.Remove(d.path(kind, key))
	if err != nil && errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	return err
}

func (d *dirPayloads) close() error { return nil }

var (
	_ Backend   = (*ObjDir)(nil)
	_ Compactor = (*ObjDir)(nil)
)
