package store

import (
	"encoding/binary"
	"fmt"
	"time"

	"locshort/internal/partition"
	"locshort/internal/service"
	"locshort/internal/shortcut"
)

// Binary wire surface: the accessors and framings the binary HTTP protocol
// is built from. The principle throughout is that canonical record payloads
// move verbatim — the bytes a fingerprint was computed over are the bytes
// on the wire — so the receiving side verifies exactly what the store's
// own decoders already verify, and "binary" can never drift from "JSON"
// (the JSON peer API base64-wraps these same payloads).

// ShortcutPayload returns the raw shortcut record payload for key — the
// binary /v1/shortcuts response body. On a mapped segment the slice is
// zero-copy (see readPayload); treat it as read-only.
func (s *Store) ShortcutPayload(key service.Fingerprint) ([]byte, bool, error) {
	return s.payloadOf(kindShortcut, key)
}

// PutGraphPayload persists an already-encoded canonical graph payload
// verbatim under fp — the binary ingest path, which has the exact bytes in
// hand and must not pay a decode→re-encode round trip. The payload is
// verified against fp before anything is written (the store stays
// self-verifying no matter who assembled the bytes); known content is a
// cheap no-op. Implements service.GraphPayloadStore.
func (s *Store) PutGraphPayload(fp service.Fingerprint, payload []byte) error {
	if len(payload) < 1 || payload[0] != graphPayloadVersion {
		return fmt.Errorf("store: graph %s: bad payload version", fp)
	}
	if got := service.FingerprintBytes(payload[1:]); got != fp {
		return fmt.Errorf("store: graph %s: payload hashes to %s", fp, got)
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.has(kindGraph, fp) {
		return nil
	}
	return s.appendRecord(kindGraph, fp, payload)
}

// EncodeShortcutRecordPayload renders the canonical shortcut record payload
// for a built result, byte-identical to what PutShortcut persists. It is
// the fallback for serving a binary shortcut response when the record is
// not (yet) durable: a storeless daemon, or a freshly built result whose
// detached persist has not landed. It pays a fresh edge-permutation sort;
// the store-backed path (ShortcutPayload) is the fast one.
func EncodeShortcutRecordPayload(graphFP service.Fingerprint, parts *partition.Partition,
	opts shortcut.Options, res *shortcut.Result, buildTime time.Duration) []byte {

	partFP := service.FingerprintPartition(parts)
	return encodeShortcut(newEdgePerm(res.Shortcut.G), graphFP, partFP, opts, res, buildTime)
}

// peerRecordVersion versions the binary PeerRecord framing.
const peerRecordVersion = 1

// AppendPeerRecord renders rec in the binary peer-exchange framing,
// appending to b: version byte, the three big-endian fingerprints (key,
// graph, partition), then the graph, partition, and shortcut payloads each
// prefixed with a uvarint length. The JSON peer API carries the same five
// facts with base64-wrapped payloads; this framing carries them raw.
func AppendPeerRecord(b []byte, rec PeerRecord) []byte {
	b = append(b, peerRecordVersion)
	b = binary.BigEndian.AppendUint64(b, uint64(rec.Key))
	b = binary.BigEndian.AppendUint64(b, uint64(rec.GraphFP))
	b = binary.BigEndian.AppendUint64(b, uint64(rec.PartitionFP))
	for _, p := range [...][]byte{rec.GraphPayload, rec.PartitionPayload, rec.ShortcutPayload} {
		b = binary.AppendUvarint(b, uint64(len(p)))
		b = append(b, p...)
	}
	return b
}

// DecodePeerRecord parses a binary peer-record frame. The payload slices
// alias b — the caller owns the buffer and must not recycle it while the
// record is in use. Nothing is verified here beyond framing: the claimed
// fingerprints are untrusted until VerifyPeerRecord re-derives them, same
// as a record that arrived via the JSON peer API.
func DecodePeerRecord(b []byte) (PeerRecord, error) {
	var rec PeerRecord
	if len(b) < 1+24 || b[0] != peerRecordVersion {
		return rec, fmt.Errorf("store: peer record: bad version or truncated head")
	}
	rec.Key = service.Fingerprint(binary.BigEndian.Uint64(b[1:]))
	rec.GraphFP = service.Fingerprint(binary.BigEndian.Uint64(b[9:]))
	rec.PartitionFP = service.Fingerprint(binary.BigEndian.Uint64(b[17:]))
	b = b[25:]
	for _, dst := range [...]*[]byte{&rec.GraphPayload, &rec.PartitionPayload, &rec.ShortcutPayload} {
		n, used := binary.Uvarint(b)
		if used <= 0 || n > maxRecordBytes || uint64(len(b)-used) < n {
			return rec, fmt.Errorf("store: peer record: truncated payload")
		}
		*dst = b[used : used+int(n) : used+int(n)]
		b = b[used+int(n):]
	}
	if len(b) != 0 {
		return rec, fmt.Errorf("store: peer record: %d trailing bytes", len(b))
	}
	return rec, nil
}
