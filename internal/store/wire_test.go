package store

import (
	"bytes"
	"testing"
	"time"

	"locshort/internal/cli"
	"locshort/internal/service"
	"locshort/internal/shortcut"
)

// TestPeerRecordBinaryFraming round-trips a full dependency closure through
// the binary peer framing and asserts the result verifies — the property
// the binary peer exchange rests on: framing adds nothing, removes nothing,
// and the payloads stay the exact bytes the fingerprints hash.
func TestPeerRecordBinaryFraming(t *testing.T) {
	dir := t.TempDir()
	g, p, res := buildFixture(t, "grid:6x6", "rows:6x6", 0)
	fp := service.FingerprintGraph(g)
	key := service.ShortcutKey(fp, p, shortcut.Options{})
	s := mustOpen(t, dir)
	defer s.Close()
	if err := s.PutGraph(fp, g); err != nil {
		t.Fatal(err)
	}
	if err := s.PutShortcut(key, fp, p, shortcut.Options{}, res, time.Millisecond); err != nil {
		t.Fatal(err)
	}
	rec, ok, err := s.ShortcutRecord(key)
	if !ok || err != nil {
		t.Fatalf("ShortcutRecord: ok=%v err=%v", ok, err)
	}

	frame := AppendPeerRecord(nil, rec)
	got, err := DecodePeerRecord(frame)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != rec.Key || got.GraphFP != rec.GraphFP || got.PartitionFP != rec.PartitionFP {
		t.Errorf("fingerprints changed in transit: %+v vs %+v", got, rec)
	}
	for i, pair := range [][2][]byte{
		{got.GraphPayload, rec.GraphPayload},
		{got.PartitionPayload, rec.PartitionPayload},
		{got.ShortcutPayload, rec.ShortcutPayload},
	} {
		if !bytes.Equal(pair[0], pair[1]) {
			t.Errorf("payload %d changed in transit", i)
		}
	}
	if _, _, _, _, err := VerifyPeerRecord(got); err != nil {
		t.Errorf("round-tripped record fails verification: %v", err)
	}
}

// TestPeerRecordBinaryFramingErrors feeds the decoder malformed frames:
// every prefix of a valid frame must fail cleanly (no panic, no false
// success), as must a bad version byte and trailing garbage.
func TestPeerRecordBinaryFramingErrors(t *testing.T) {
	g, _, err := cli.ParseGraph("cycle:8", 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := EncodeGraphPayload(g)
	rec := PeerRecord{
		Key:          1,
		GraphFP:      service.FingerprintBytes(payload[1:]),
		PartitionFP:  3,
		GraphPayload: payload,
	}
	frame := AppendPeerRecord(nil, rec)
	for n := 0; n < len(frame); n++ {
		if _, err := DecodePeerRecord(frame[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(frame))
		}
	}
	bad := append([]byte{}, frame...)
	bad[0] = 99
	if _, err := DecodePeerRecord(bad); err == nil {
		t.Error("bad version byte accepted")
	}
	if _, err := DecodePeerRecord(append(append([]byte{}, frame...), 0)); err == nil {
		t.Error("trailing byte accepted")
	}
}

// TestEncodeShortcutRecordPayloadMatchesStore asserts the storeless
// fallback encoder produces the exact bytes PutShortcut persisted — the
// byte-equivalence that lets a binary response come from either path
// without the client being able to tell.
func TestEncodeShortcutRecordPayloadMatchesStore(t *testing.T) {
	dir := t.TempDir()
	g, p, res := buildFixture(t, "grid:5x5", "blobs:5", 7)
	fp := service.FingerprintGraph(g)
	key := service.ShortcutKey(fp, p, shortcut.Options{})
	s := mustOpen(t, dir)
	defer s.Close()
	if err := s.PutGraph(fp, g); err != nil {
		t.Fatal(err)
	}
	if err := s.PutShortcut(key, fp, p, shortcut.Options{}, res, 42*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	stored, ok, err := s.ShortcutPayload(key)
	if !ok || err != nil {
		t.Fatalf("ShortcutPayload: ok=%v err=%v", ok, err)
	}
	fresh := EncodeShortcutRecordPayload(fp, p, shortcut.Options{}, res, 42*time.Millisecond)
	if !bytes.Equal(stored, fresh) {
		t.Error("fresh encoding differs from the stored payload")
	}
}

// TestPutGraphPayloadVerifies asserts the raw-payload ingest path stays
// self-verifying: a payload whose bytes do not hash to the claimed
// fingerprint, or with a wrong version byte, is rejected before anything
// hits the log.
func TestPutGraphPayloadVerifies(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir)
	defer s.Close()
	g, _, err := cli.ParseGraph("grid:4x4", 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := EncodeGraphPayload(g)
	fp := service.FingerprintBytes(payload[1:])

	if err := s.PutGraphPayload(fp+1, payload); err == nil {
		t.Error("wrong fingerprint accepted")
	}
	bad := append([]byte{}, payload...)
	bad[0] = 0xee
	if err := s.PutGraphPayload(fp, bad); err == nil {
		t.Error("wrong payload version accepted")
	}
	if err := s.PutGraphPayload(fp, nil); err == nil {
		t.Error("empty payload accepted")
	}
	if err := s.PutGraphPayload(fp, payload); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	// Verbatim persistence: the payload read back is the payload put in.
	got, ok, err := s.GraphPayload(fp)
	if !ok || err != nil || !bytes.Equal(got, payload) {
		t.Errorf("read-back mismatch: ok=%v err=%v equal=%v", ok, err, bytes.Equal(got, payload))
	}
	// Re-put of known content is a no-op, not an error.
	if err := s.PutGraphPayload(fp, payload); err != nil {
		t.Errorf("re-put of known content: %v", err)
	}
	if st := s.OpenStats(); st.Graphs != 1 {
		t.Errorf("Graphs = %d, want 1 after dedup", st.Graphs)
	}
}

// FuzzDecodeGraphPayload drives the binary ingest decoder with arbitrary
// bytes. The invariants: never panic; and any payload the decoder accepts
// must be canonical — re-encoding the decoded graph reproduces the input
// bytes exactly, so the fingerprint the store computed over the input is
// the graph's true content address.
func FuzzDecodeGraphPayload(f *testing.F) {
	for _, spec := range []string{"grid:4x4", "cycle:9", "wheel:7", "random:12,20"} {
		g, _, err := cli.ParseGraph(spec, 1)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(EncodeGraphPayload(g))
	}
	f.Add([]byte{})
	f.Add([]byte{graphPayloadVersion})
	f.Fuzz(func(t *testing.T, payload []byte) {
		var fp service.Fingerprint
		if len(payload) >= 1 {
			fp = service.FingerprintBytes(payload[1:])
		}
		g, err := DecodeGraphPayload(payload, fp)
		if err != nil {
			return
		}
		re := EncodeGraphPayload(g)
		if !bytes.Equal(re, payload) {
			t.Fatalf("accepted non-canonical payload: re-encode differs (%d vs %d bytes)", len(re), len(payload))
		}
		if got := service.FingerprintGraph(g); got != fp {
			t.Fatalf("fingerprint drift: payload hashes to %s, graph to %s", fp, got)
		}
	})
}

// FuzzDecodePeerRecord drives the peer-frame parser with arbitrary bytes:
// it must never panic and never hand back payload slices that escape the
// input buffer.
func FuzzDecodePeerRecord(f *testing.F) {
	g, _, err := cli.ParseGraph("grid:3x3", 0)
	if err != nil {
		f.Fatal(err)
	}
	payload := EncodeGraphPayload(g)
	f.Add(AppendPeerRecord(nil, PeerRecord{Key: 1, GraphFP: 2, PartitionFP: 3, GraphPayload: payload}))
	f.Add([]byte{peerRecordVersion})
	f.Fuzz(func(t *testing.T, b []byte) {
		rec, err := DecodePeerRecord(b)
		if err != nil {
			return
		}
		total := len(rec.GraphPayload) + len(rec.PartitionPayload) + len(rec.ShortcutPayload)
		if total > len(b) {
			t.Fatalf("decoded payloads (%d bytes) exceed input (%d bytes)", total, len(b))
		}
	})
}
