package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
	"time"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/service"
	"locshort/internal/shortcut"
	"locshort/internal/tree"
)

// Payload encodings. Every payload starts with a one-byte version so the
// format can evolve record kind by record kind; decoders reject unknown
// versions instead of misreading them.
//
// Graphs and partitions persist as exactly the canonical byte encodings the
// fingerprints are computed over (graph.AppendCanonical,
// service.AppendPartitionCanonical). That makes the store self-verifying:
// for these kinds, FNV-1a over the payload body *is* the record key, so
// `locshortctl verify` can prove content-addressing integrity without any
// side information, and a decoded object re-encodes to the identical bytes.
//
// Shortcut payloads cannot use the in-memory edge IDs of the engine's
// representative graph — those depend on ingestion order, which is not
// reproduced after a restart (the warm-started representative is decoded
// from the canonical graph record). All edge IDs in a shortcut payload are
// therefore expressed in *canonical edge order*: the order of the edges in
// the canonical graph encoding. encodeShortcut translates from the live
// representative into canonical order; decodeShortcut translates back into
// whatever representative the serving process holds.
const (
	graphPayloadVersion     = 1
	partitionPayloadVersion = 1
	shortcutPayloadVersion  = 1
)

// maxReasonableCount bounds node/edge/part counts read from disk before any
// allocation is sized from them, so a corrupt length cannot OOM the opener.
const maxReasonableCount = 1 << 40

// maxGraphNodes bounds the node count of a decoded graph payload. Unlike
// the edge count — which the payload length pins down exactly — the node
// count is a bare header field that sizes graph.New's allocations, and
// since the binary ingest path feeds decodeGraph straight from the network
// a loose bound is an amplification lever: a 20-byte payload claiming 2^38
// nodes would OOM the daemon before edge validation sees a single byte.
// 2^26 nodes is far beyond what the 64 MiB request body cap admits for any
// connected graph (n <= edges+1 ~ 2.8M) while staying a bounded allocation.
const maxGraphNodes = 1 << 26

// edgePerm is the bijection between a graph's live edge IDs and canonical
// edge order (the sort order of graph.AppendCanonical, ties broken by live
// ID — any tie order is equivalent because tied edges are identical).
type edgePerm struct {
	toCanon   []int32 // live edge ID -> canonical index
	fromCanon []int32 // canonical index -> live edge ID
}

// newEdgePerm computes the canonical edge permutation of g.
func newEdgePerm(g *graph.Graph) *edgePerm {
	edges := g.EdgeSlice()
	m := len(edges)
	p := &edgePerm{toCanon: make([]int32, m), fromCanon: make([]int32, m)}
	for i := range p.fromCanon {
		p.fromCanon[i] = int32(i)
	}
	sort.Slice(p.fromCanon, func(a, b int) bool {
		ea, eb := edges[p.fromCanon[a]], edges[p.fromCanon[b]]
		ua, va := ea.U, ea.V
		if ua > va {
			ua, va = va, ua
		}
		ub, vb := eb.U, eb.V
		if ub > vb {
			ub, vb = vb, ub
		}
		if ua != ub {
			return ua < ub
		}
		if va != vb {
			return va < vb
		}
		if ea.W != eb.W {
			return ea.W < eb.W
		}
		return p.fromCanon[a] < p.fromCanon[b]
	})
	for canon, live := range p.fromCanon {
		p.toCanon[live] = int32(canon)
	}
	return p
}

// partCanonOrder returns each part's canonical rank: the order of first
// appearance over nodes 0..n-1, i.e. the part order of the canonical
// partition encoding. Every partition instance with the same fingerprint
// shares these ranks even when its Parts slice is ordered differently
// (BFSBlobs orders by seed, FromLabels by first appearance), so shortcut
// payloads index their per-part data by rank, never by instance order.
func partCanonOrder(p *partition.Partition) []int32 {
	rank := make([]int32, p.NumParts())
	for i := range rank {
		rank[i] = -1
	}
	next := int32(0)
	for _, i := range p.PartOf {
		if i >= 0 && rank[i] < 0 {
			rank[i] = next
			next++
		}
	}
	return rank
}

// encodeGraph renders the graph payload: version byte + canonical encoding.
func encodeGraph(g *graph.Graph) []byte {
	b := make([]byte, 1, 1+16+24*g.NumEdges())
	b[0] = graphPayloadVersion
	return g.AppendCanonical(b)
}

// decodeGraph reconstructs a graph from its payload and verifies that the
// content fingerprint of the payload matches key. The decoded graph's edge
// IDs follow canonical edge order.
func decodeGraph(payload []byte, key service.Fingerprint) (*graph.Graph, error) {
	if len(payload) < 1 || payload[0] != graphPayloadVersion {
		return nil, fmt.Errorf("store: graph %s: bad payload version", key)
	}
	body := payload[1:]
	if got := service.FingerprintBytes(body); got != key {
		return nil, fmt.Errorf("store: graph %s: content hashes to %s", key, got)
	}
	if len(body) < 16 {
		return nil, fmt.Errorf("store: graph %s: short payload", key)
	}
	n := binary.BigEndian.Uint64(body)
	m := binary.BigEndian.Uint64(body[8:])
	if n > maxGraphNodes || m > maxReasonableCount {
		return nil, fmt.Errorf("store: graph %s: implausible sizes n=%d m=%d", key, n, m)
	}
	if uint64(len(body)) != 16+24*m {
		return nil, fmt.Errorf("store: graph %s: payload length %d for %d edges", key, len(body), m)
	}
	g := graph.New(int(n))
	off := 16
	var pu, pv uint64
	var pw float64
	for i := uint64(0); i < m; i++ {
		u := binary.BigEndian.Uint64(body[off:])
		v := binary.BigEndian.Uint64(body[off+8:])
		w := math.Float64frombits(binary.BigEndian.Uint64(body[off+16:]))
		off += 24
		if u >= v || v >= n {
			// u >= v also rejects self-loops; canonical edges are
			// normalized to u < v before sorting.
			return nil, fmt.Errorf("store: graph %s: edge %d endpoints {%d,%d} invalid for %d nodes",
				key, i, u, v, n)
		}
		if math.IsNaN(w) {
			return nil, fmt.Errorf("store: graph %s: edge %d has NaN weight", key, i)
		}
		// The payload must be the canonical encoding — nondecreasing in
		// (u, v, w) — or its fingerprint is not the graph's true content
		// address and the same graph could register under two identities.
		// The binary ingest path feeds this decoder raw network bytes, so
		// this is enforced here, not assumed.
		if i > 0 && (u < pu || (u == pu && (v < pv || (v == pv && w < pw)))) {
			return nil, fmt.Errorf("store: graph %s: edge %d out of canonical order", key, i)
		}
		pu, pv, pw = u, v, w
		g.AddWeightedEdge(int(u), int(v), w)
	}
	return g, nil
}

// encodePartition renders the partition payload: version byte + canonical
// assignment encoding.
func encodePartition(p *partition.Partition) []byte {
	b := make([]byte, 1, 1+16+8*len(p.PartOf))
	b[0] = partitionPayloadVersion
	return service.AppendPartitionCanonical(b, p)
}

// decodePartition reconstructs a partition from its payload against g,
// verifying the content fingerprint and (via partition.FromLabels) that
// every part induces a connected subgraph of g.
func decodePartition(payload []byte, key service.Fingerprint, g *graph.Graph) (*partition.Partition, error) {
	if len(payload) < 1 || payload[0] != partitionPayloadVersion {
		return nil, fmt.Errorf("store: partition %s: bad payload version", key)
	}
	body := payload[1:]
	if got := service.FingerprintBytes(body); got != key {
		return nil, fmt.Errorf("store: partition %s: content hashes to %s", key, got)
	}
	if len(body) < 16 {
		return nil, fmt.Errorf("store: partition %s: short payload", key)
	}
	n := binary.BigEndian.Uint64(body)
	k := binary.BigEndian.Uint64(body[8:])
	if uint64(len(body)) != 16+8*n {
		return nil, fmt.Errorf("store: partition %s: payload length %d for %d nodes", key, len(body), n)
	}
	if int(n) != g.NumNodes() {
		return nil, fmt.Errorf("store: partition %s: covers %d nodes, graph has %d", key, n, g.NumNodes())
	}
	labels := make([]int, n)
	for v := range labels {
		l := binary.BigEndian.Uint64(body[16+8*v:])
		if l == ^uint64(0) {
			labels[v] = -1
			continue
		}
		if l >= k {
			return nil, fmt.Errorf("store: partition %s: node %d label %d out of range [0,%d)", key, v, l, k)
		}
		labels[v] = int(l)
	}
	p, err := partition.FromLabels(g, labels)
	if err != nil {
		return nil, fmt.Errorf("store: partition %s: %w", key, err)
	}
	if uint64(p.NumParts()) != k {
		return nil, fmt.Errorf("store: partition %s: decoded %d parts, header says %d", key, p.NumParts(), k)
	}
	return p, nil
}

// shortcutMeta is the decoded fixed-size head of a shortcut payload, enough
// to know which graph and partition records the shortcut depends on without
// materializing the shortcut itself (the segment replay parses exactly this
// much to index records).
type shortcutMeta struct {
	graphFP service.Fingerprint
	partFP  service.Fingerprint
}

// parseShortcutMeta reads the dependency head of a shortcut payload.
func parseShortcutMeta(payload []byte) (shortcutMeta, error) {
	if len(payload) < 17 || payload[0] != shortcutPayloadVersion {
		return shortcutMeta{}, fmt.Errorf("store: shortcut payload: bad version or truncated head")
	}
	return shortcutMeta{
		graphFP: service.Fingerprint(binary.BigEndian.Uint64(payload[1:])),
		partFP:  service.Fingerprint(binary.BigEndian.Uint64(payload[9:])),
	}, nil
}

// encodeShortcut renders a shortcut payload. Layout after the version byte
// and the two big-endian dependency fingerprints (graph, partition):
//
//	varint x5   build options (delta, maxdelta, cf, bf, iters)
//	varint x5   result metadata (delta', congestion threshold, block
//	            budget, iterations, tree depth)
//	varint      build cost in nanoseconds
//	byte        1 if a restriction tree follows, else 0
//	[tree]      uvarint root, uvarint node count n, then n varints:
//	            canonical parent-edge ID, or -1 for the root / non-tree nodes
//	uvarint     part count k
//	k bits      coverage bitmap, little-endian within bytes, indexed by
//	            canonical part rank (see partCanonOrder)
//	[per covered part, in canonical rank order] uvarint edge count, then
//	            ascending canonical edge IDs delta-encoded as uvarints
//	            (first absolute, rest gaps)
func encodeShortcut(perm *edgePerm, graphFP, partFP service.Fingerprint,
	opts shortcut.Options, res *shortcut.Result, buildTime time.Duration) []byte {

	s := res.Shortcut
	b := make([]byte, 1, 64+len(s.H)*8)
	b[0] = shortcutPayloadVersion
	b = binary.BigEndian.AppendUint64(b, uint64(graphFP))
	b = binary.BigEndian.AppendUint64(b, uint64(partFP))
	for _, v := range [...]int{opts.Delta, opts.MaxDelta, opts.CongestionFactor, opts.BlockFactor, opts.MaxIterations} {
		b = binary.AppendVarint(b, int64(v))
	}
	for _, v := range [...]int{res.Delta, res.CongestionThreshold, res.BlockBudget, res.Iterations, res.TreeDepth} {
		b = binary.AppendVarint(b, int64(v))
	}
	b = binary.AppendVarint(b, buildTime.Nanoseconds())
	if t := s.Tree; t != nil {
		b = append(b, 1)
		b = binary.AppendUvarint(b, uint64(t.Root))
		b = binary.AppendUvarint(b, uint64(len(t.Parent)))
		for v := range t.Parent {
			if t.Parent[v] < 0 || t.ParentEdge[v] < 0 {
				b = binary.AppendVarint(b, -1)
			} else {
				b = binary.AppendVarint(b, int64(perm.toCanon[t.ParentEdge[v]]))
			}
		}
	} else {
		b = append(b, 0)
	}
	k := len(s.H)
	b = binary.AppendUvarint(b, uint64(k))
	rank := partCanonOrder(s.Parts)
	byRank := make([]int, k) // canonical rank -> instance part index
	for i, r := range rank {
		byRank[r] = i
	}
	bitmap := make([]byte, (k+7)/8)
	for i, c := range s.Covered {
		if c {
			r := rank[i]
			bitmap[r/8] |= 1 << (r % 8)
		}
	}
	b = append(b, bitmap...)
	canon := make([]int32, 0, 64)
	for r := 0; r < k; r++ {
		i := byRank[r]
		h := s.H[i]
		if !s.Covered[i] {
			continue
		}
		canon = canon[:0]
		for _, id := range h {
			canon = append(canon, perm.toCanon[id])
		}
		sort.Slice(canon, func(a, b int) bool { return canon[a] < canon[b] })
		b = binary.AppendUvarint(b, uint64(len(canon)))
		prev := int32(0)
		for j, id := range canon {
			if j == 0 {
				b = binary.AppendUvarint(b, uint64(id))
			} else {
				b = binary.AppendUvarint(b, uint64(id-prev))
			}
			prev = id
		}
	}
	return b
}

// varintReader pulls varints off a payload tail with uniform error
// handling.
type varintReader struct {
	b   []byte
	err error
}

func (r *varintReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("store: truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *varintReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.b)
	if n <= 0 {
		r.err = fmt.Errorf("store: truncated varint")
		return 0
	}
	r.b = r.b[n:]
	return v
}

func (r *varintReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if len(r.b) == 0 {
		r.err = fmt.Errorf("store: truncated payload")
		return 0
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v
}

func (r *varintReader) bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.b) < n {
		r.err = fmt.Errorf("store: truncated payload")
		return nil
	}
	v := r.b[:n]
	r.b = r.b[n:]
	return v
}

// decodeShortcut reconstructs the stored shortcut against g (the serving
// process's representative for the record's graph fingerprint) and parts
// (the requested partition). It translates canonical edge IDs back into g's
// live IDs, rebuilds the restriction tree, validates the result
// structurally, and verifies that the stored (graph, partition, options)
// triple re-derives the record key — so a record can never be served under
// a key it does not hash to.
func decodeShortcut(payload []byte, key service.Fingerprint, perm *edgePerm,
	g *graph.Graph, parts *partition.Partition) (*shortcut.Result, time.Duration, error) {

	fail := func(err error) (*shortcut.Result, time.Duration, error) {
		return nil, 0, fmt.Errorf("store: shortcut %s: %w", key, err)
	}
	meta, err := parseShortcutMeta(payload)
	if err != nil {
		return fail(err)
	}
	r := &varintReader{b: payload[17:]}
	var opts shortcut.Options
	for _, f := range [...]*int{&opts.Delta, &opts.MaxDelta, &opts.CongestionFactor, &opts.BlockFactor, &opts.MaxIterations} {
		*f = int(r.varint())
	}
	res := &shortcut.Result{}
	for _, f := range [...]*int{&res.Delta, &res.CongestionThreshold, &res.BlockBudget, &res.Iterations, &res.TreeDepth} {
		*f = int(r.varint())
	}
	buildNs := r.varint()
	m := g.NumEdges()
	liveEdge := func(canon int64) (int, error) {
		if canon < 0 || canon >= int64(m) {
			return 0, fmt.Errorf("canonical edge %d out of range [0,%d)", canon, m)
		}
		return int(perm.fromCanon[canon]), nil
	}
	var rooted *tree.Rooted
	if r.byte() == 1 {
		root := r.uvarint()
		n := r.uvarint()
		if r.err != nil {
			return fail(r.err)
		}
		if n != uint64(g.NumNodes()) || root >= n {
			return fail(fmt.Errorf("tree covers %d nodes (root %d), graph has %d", n, root, g.NumNodes()))
		}
		parent := make([]int, n)
		parentEdge := make([]int, n)
		for v := range parent {
			ce := r.varint()
			if r.err != nil {
				return fail(r.err)
			}
			if ce < 0 {
				parent[v], parentEdge[v] = -1, -1
				continue
			}
			id, err := liveEdge(ce)
			if err != nil {
				return fail(err)
			}
			e := g.Edge(id)
			switch v {
			case e.U:
				parent[v] = e.V
			case e.V:
				parent[v] = e.U
			default:
				return fail(fmt.Errorf("node %d is not an endpoint of its parent edge %d", v, id))
			}
			parentEdge[v] = id
		}
		rooted, err = tree.FromParents(int(root), parent, parentEdge)
		if err != nil {
			return fail(err)
		}
	}
	k := r.uvarint()
	if r.err != nil {
		return fail(r.err)
	}
	if k != uint64(parts.NumParts()) {
		return fail(fmt.Errorf("%d parts stored, request has %d", k, parts.NumParts()))
	}
	bitmap := r.bytes((int(k) + 7) / 8)
	if r.err != nil {
		return fail(r.err)
	}
	s := &shortcut.Shortcut{
		G:       g,
		Parts:   parts,
		Tree:    rooted,
		H:       make([][]int, k),
		Covered: make([]bool, k),
	}
	rank := partCanonOrder(parts)
	byRank := make([]int, k) // canonical rank -> part index of this instance
	for i, r := range rank {
		byRank[r] = i
	}
	for rnk := 0; rnk < int(k); rnk++ {
		i := byRank[rnk]
		if bitmap[rnk/8]&(1<<(rnk%8)) == 0 {
			continue
		}
		s.Covered[i] = true
		cnt := r.uvarint()
		if r.err != nil {
			return fail(r.err)
		}
		if cnt > uint64(m) {
			return fail(fmt.Errorf("part %d lists %d edges, graph has %d", i, cnt, m))
		}
		h := make([]int, 0, cnt)
		prev := int64(0)
		for j := uint64(0); j < cnt; j++ {
			gap := int64(r.uvarint())
			if j == 0 {
				prev = gap
			} else {
				if gap == 0 {
					return fail(fmt.Errorf("part %d repeats a canonical edge", i))
				}
				prev += gap
			}
			id, err := liveEdge(prev)
			if err != nil {
				return fail(err)
			}
			h = append(h, id)
		}
		if r.err != nil {
			return fail(r.err)
		}
		s.H[i] = h
	}
	if r.err != nil {
		return fail(r.err)
	}
	if len(r.b) != 0 {
		return fail(fmt.Errorf("%d trailing bytes", len(r.b)))
	}
	if err := s.Validate(); err != nil {
		return fail(err)
	}
	if got := service.ShortcutKey(meta.graphFP, parts, opts); got != key {
		return fail(fmt.Errorf("stored inputs re-derive key %s", got))
	}
	res.Shortcut = s
	return res, time.Duration(buildNs), nil
}
