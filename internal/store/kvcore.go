package store

import (
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"sync"
	"time"

	"locshort/internal/graph"
	"locshort/internal/jobs"
	"locshort/internal/partition"
	"locshort/internal/service"
	"locshort/internal/shortcut"
)

// kvCore is the shared implementation behind the non-segment backends (Mem,
// ObjDir): a live-record index keyed exactly like the segment store's,
// layered over an abstract one-payload-per-record store. The payload
// encodings are byte-identical to the segment store's record payloads, so
// every backend is mutually interoperable at the peer-exchange layer and
// verifiable by the same decoders; only durability and placement differ.
//
// Locking mirrors the segment store: writeMu serializes mutations and is
// held across payload writes; mu guards the index and is held only for
// short critical sections, so reads are never stalled behind persistence.
// Lock order: writeMu before mu.
type kvCore struct {
	kind string // backend kind, for error messages

	ps payloadStore

	writeMu sync.Mutex

	mu      sync.RWMutex
	closed  bool
	index   map[indexKey]kvMeta
	byGraph map[service.Fingerprint]map[service.Fingerprint]struct{}
	open    OpenStats // Open-time repair counters; record counts recomputed

	perms permCache
}

// kvMeta is the index entry for one live record.
type kvMeta struct {
	size    int64
	graphFP service.Fingerprint // shortcut records only
	partFP  service.Fingerprint // shortcut records only
}

// payloadStore is where a kvCore backend keeps record payloads. put must be
// atomic (a reader never observes a partial payload) and, for durable
// implementations, crash-safe: after put returns nil the payload survives a
// crash; after an error the record is either absent or the old version.
// get for a key that was concurrently deleted may return fs.ErrNotExist;
// kvCore treats that as a miss, never an error.
type payloadStore interface {
	put(kind byte, key service.Fingerprint, payload []byte) error
	get(kind byte, key service.Fingerprint) ([]byte, error)
	del(kind byte, key service.Fingerprint) error
	close() error
}

func newKVCore(kind string, ps payloadStore) kvCore {
	return kvCore{
		kind:    kind,
		ps:      ps,
		index:   make(map[indexKey]kvMeta),
		byGraph: make(map[service.Fingerprint]map[service.Fingerprint]struct{}),
	}
}

// indexPutLocked installs a live record, newest-wins. Caller holds mu.
func (c *kvCore) indexPutLocked(kind byte, key service.Fingerprint, meta kvMeta) {
	ik := indexKey{kind: kind, key: key}
	if old, ok := c.index[ik]; ok && kind == kindShortcut {
		if deps := c.byGraph[old.graphFP]; deps != nil {
			delete(deps, key)
			if len(deps) == 0 {
				delete(c.byGraph, old.graphFP)
			}
		}
	}
	c.index[ik] = meta
	if kind == kindShortcut {
		deps := c.byGraph[meta.graphFP]
		if deps == nil {
			deps = make(map[service.Fingerprint]struct{})
			c.byGraph[meta.graphFP] = deps
		}
		deps[key] = struct{}{}
	}
}

func (c *kvCore) has(kind byte, key service.Fingerprint) bool {
	c.mu.RLock()
	_, ok := c.index[indexKey{kind: kind, key: key}]
	c.mu.RUnlock()
	return ok
}

func (c *kvCore) errClosed() error { return fmt.Errorf("store: %s backend closed", c.kind) }

// putRecord durably writes one record and installs it in the index. Caller
// holds writeMu.
func (c *kvCore) putRecord(kind byte, key service.Fingerprint, payload []byte) error {
	c.mu.RLock()
	closed := c.closed
	c.mu.RUnlock()
	if closed {
		return c.errClosed()
	}
	meta := kvMeta{size: int64(len(payload))}
	if kind == kindShortcut {
		sm, err := parseShortcutMeta(payload)
		if err != nil {
			return err
		}
		meta.graphFP, meta.partFP = sm.graphFP, sm.partFP
	}
	if err := c.ps.put(kind, key, payload); err != nil {
		return err
	}
	c.mu.Lock()
	c.indexPutLocked(kind, key, meta)
	c.mu.Unlock()
	return nil
}

// payloadOf reads a live record's payload. A record deleted between the
// index lookup and the payload read is a miss, not an error.
func (c *kvCore) payloadOf(kind byte, key service.Fingerprint) ([]byte, bool, error) {
	if !c.has(kind, key) {
		return nil, false, nil
	}
	payload, err := c.ps.get(kind, key)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return payload, true, nil
}

// PutGraph persists g under its content fingerprint; known content is a
// cheap no-op. Implements service.Store.
func (c *kvCore) PutGraph(fp service.Fingerprint, g *graph.Graph) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.has(kindGraph, fp) {
		return nil
	}
	return c.putRecord(kindGraph, fp, encodeGraph(g))
}

// PutGraphPayload persists an already-encoded canonical graph payload
// verbatim under fp, verifying it first. Implements
// service.GraphPayloadStore.
func (c *kvCore) PutGraphPayload(fp service.Fingerprint, payload []byte) error {
	if len(payload) < 1 || payload[0] != graphPayloadVersion {
		return fmt.Errorf("store: graph %s: bad payload version", fp)
	}
	if got := service.FingerprintBytes(payload[1:]); got != fp {
		return fmt.Errorf("store: graph %s: payload hashes to %s", fp, got)
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.has(kindGraph, fp) {
		return nil
	}
	return c.putRecord(kindGraph, fp, append([]byte(nil), payload...))
}

// EachGraph decodes every live graph record, ascending by fingerprint.
// Implements service.Store.
func (c *kvCore) EachGraph(fn func(fp service.Fingerprint, g *graph.Graph) error) error {
	for _, fp := range c.GraphFingerprints() {
		payload, ok, err := c.payloadOf(kindGraph, fp)
		if err != nil {
			return err
		}
		if !ok {
			continue // deleted mid-iteration
		}
		g, err := decodeGraph(payload, fp)
		if err != nil {
			return err
		}
		if err := fn(fp, g); err != nil {
			return err
		}
	}
	return nil
}

// GetGraph decodes the live graph record for fp, if any.
func (c *kvCore) GetGraph(fp service.Fingerprint) (*graph.Graph, bool, error) {
	payload, ok, err := c.payloadOf(kindGraph, fp)
	if err != nil || !ok {
		return nil, false, err
	}
	g, err := decodeGraph(payload, fp)
	if err != nil {
		return nil, false, err
	}
	return g, true, nil
}

// GetPartition decodes the live partition record for fp against g.
func (c *kvCore) GetPartition(fp service.Fingerprint, g *graph.Graph) (*partition.Partition, bool, error) {
	payload, ok, err := c.payloadOf(kindPartition, fp)
	if err != nil || !ok {
		return nil, false, err
	}
	p, err := decodePartition(payload, fp, g)
	if err != nil {
		return nil, false, err
	}
	return p, true, nil
}

// PutShortcut persists the partition record (deduplicated) and the shortcut
// record. A shortcut whose graph record is no longer live is silently
// dropped — same no-resurrection semantics as the segment store. Implements
// service.Store.
func (c *kvCore) PutShortcut(key, graphFP service.Fingerprint, parts *partition.Partition,
	opts shortcut.Options, res *shortcut.Result, buildTime time.Duration) error {

	partFP := service.FingerprintPartition(parts)
	payload := encodeShortcut(c.perms.get(res.Shortcut.G), graphFP, partFP, opts, res, buildTime)
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if !c.has(kindGraph, graphFP) || c.has(kindShortcut, key) {
		return nil
	}
	if !c.has(kindPartition, partFP) {
		if err := c.putRecord(kindPartition, partFP, encodePartition(parts)); err != nil {
			return err
		}
	}
	return c.putRecord(kindShortcut, key, payload)
}

// GetShortcut loads and reconstructs the shortcut stored under key against
// the live representative g and the requested partition. Implements
// service.Store.
func (c *kvCore) GetShortcut(key service.Fingerprint, g *graph.Graph, parts *partition.Partition) (
	*shortcut.Result, time.Duration, bool, error) {

	payload, ok, err := c.payloadOf(kindShortcut, key)
	if err != nil || !ok {
		return nil, 0, false, err
	}
	res, bt, err := decodeShortcut(payload, key, c.perms.get(g), g, parts)
	if err != nil {
		return nil, 0, false, err
	}
	return res, bt, true, nil
}

// DeleteGraph removes the graph record for fp and every shortcut built on
// it; deleting an absent graph is a no-op. Implements service.Store. The
// index entries drop first (readers fall to a miss immediately), then the
// payloads; a crash in between leaves orphans a durable backend sweeps on
// its next Open.
func (c *kvCore) DeleteGraph(fp service.Fingerprint) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return c.errClosed()
	}
	_, haveGraph := c.index[indexKey{kind: kindGraph, key: fp}]
	deps := c.byGraph[fp]
	if !haveGraph && len(deps) == 0 {
		c.mu.Unlock()
		return nil
	}
	keys := make([]service.Fingerprint, 0, len(deps))
	for key := range deps {
		keys = append(keys, key)
		delete(c.index, indexKey{kind: kindShortcut, key: key})
	}
	delete(c.byGraph, fp)
	delete(c.index, indexKey{kind: kindGraph, key: fp})
	c.mu.Unlock()
	// Graph payload first: once it is gone, a crash leaves dependent
	// shortcut payloads orphaned, which reopen detects and sweeps — the
	// reverse order could leave a graph whose shortcuts silently vanished.
	var first error
	if err := c.ps.del(kindGraph, fp); err != nil && first == nil {
		first = err
	}
	for _, key := range keys {
		if err := c.ps.del(kindShortcut, key); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// PutJob durably writes (or supersedes) an async job record under its job
// ID. Implements jobs.Store.
func (c *kvCore) PutJob(id uint64, payload []byte) error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	return c.putRecord(kindJob, service.Fingerprint(id), append([]byte(nil), payload...))
}

// GetJob returns the live job record payload for id, if any. Implements
// jobs.Store.
func (c *kvCore) GetJob(id uint64) ([]byte, bool, error) {
	return c.payloadOf(kindJob, service.Fingerprint(id))
}

// EachJob calls fn for every live job record, ascending by ID. Implements
// jobs.Store.
func (c *kvCore) EachJob(fn func(id uint64, payload []byte) error) error {
	c.mu.RLock()
	ids := make([]service.Fingerprint, 0, 8)
	for ik := range c.index {
		if ik.kind == kindJob {
			ids = append(ids, ik.key)
		}
	}
	c.mu.RUnlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		payload, ok, err := c.payloadOf(kindJob, id)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		if err := fn(uint64(id), payload); err != nil {
			return err
		}
	}
	return nil
}

// HasShortcut reports whether a live shortcut record exists for key.
func (c *kvCore) HasShortcut(key service.Fingerprint) bool { return c.has(kindShortcut, key) }

// GraphKnown reports whether a live graph record exists for fp.
func (c *kvCore) GraphKnown(fp service.Fingerprint) bool { return c.has(kindGraph, fp) }

// GraphPayload returns the raw graph record payload for fp.
func (c *kvCore) GraphPayload(fp service.Fingerprint) ([]byte, bool, error) {
	return c.payloadOf(kindGraph, fp)
}

// ShortcutPayload returns the raw shortcut record payload for key.
func (c *kvCore) ShortcutPayload(key service.Fingerprint) ([]byte, bool, error) {
	return c.payloadOf(kindShortcut, key)
}

// ShortcutRecord assembles the PeerRecord for key (see PeerStore).
func (c *kvCore) ShortcutRecord(key service.Fingerprint) (PeerRecord, bool, error) {
	var rec PeerRecord
	c.mu.RLock()
	meta, ok := c.index[indexKey{kind: kindShortcut, key: key}]
	c.mu.RUnlock()
	if !ok {
		return rec, false, nil
	}
	rec.Key, rec.GraphFP, rec.PartitionFP = key, meta.graphFP, meta.partFP
	var err error
	var found bool
	if rec.ShortcutPayload, found, err = c.payloadOf(kindShortcut, key); err != nil || !found {
		return rec, false, err
	}
	if rec.GraphPayload, found, err = c.payloadOf(kindGraph, meta.graphFP); err != nil {
		return rec, false, err
	} else if !found {
		return rec, false, fmt.Errorf("store: shortcut %s references missing graph %s", key, meta.graphFP)
	}
	if rec.PartitionPayload, found, err = c.payloadOf(kindPartition, meta.partFP); err != nil {
		return rec, false, err
	} else if !found {
		return rec, false, fmt.Errorf("store: shortcut %s references missing partition %s", key, meta.partFP)
	}
	return rec, true, nil
}

// ShortcutInventory lists the live shortcut records on the arc (lo, hi].
func (c *kvCore) ShortcutInventory(lo, hi uint64) []InventoryEntry {
	c.mu.RLock()
	out := make([]InventoryEntry, 0, 64)
	for ik, meta := range c.index {
		if ik.kind != kindShortcut || !inRange(uint64(ik.key), lo, hi) {
			continue
		}
		out = append(out, InventoryEntry{Key: ik.key, GraphFP: meta.graphFP, PartitionFP: meta.partFP})
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// GraphFingerprints lists the live graph record keys, sorted.
func (c *kvCore) GraphFingerprints() []service.Fingerprint {
	c.mu.RLock()
	out := make([]service.Fingerprint, 0, 8)
	for ik := range c.index {
		if ik.kind == kindGraph {
			out = append(out, ik.key)
		}
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ImportShortcut verifies rec end to end and installs the records this
// backend is missing (see PeerStore).
func (c *kvCore) ImportShortcut(rec PeerRecord) (*graph.Graph, bool, error) {
	g, _, _, _, err := VerifyPeerRecord(rec)
	if err != nil {
		return nil, false, err
	}
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	if c.has(kindShortcut, rec.Key) {
		return g, false, nil
	}
	if !c.has(kindGraph, rec.GraphFP) {
		if err := c.putRecord(kindGraph, rec.GraphFP, rec.GraphPayload); err != nil {
			return g, false, err
		}
	}
	if !c.has(kindPartition, rec.PartitionFP) {
		if err := c.putRecord(kindPartition, rec.PartitionFP, rec.PartitionPayload); err != nil {
			return g, false, err
		}
	}
	if err := c.putRecord(kindShortcut, rec.Key, rec.ShortcutPayload); err != nil {
		return g, false, err
	}
	return g, true, nil
}

// Records lists the live records sorted by kind then key.
func (c *kvCore) Records() []RecordInfo {
	c.mu.RLock()
	out := make([]RecordInfo, 0, len(c.index))
	for ik, meta := range c.index {
		out = append(out, RecordInfo{
			Kind:        kindName(ik.kind),
			Key:         ik.key,
			Bytes:       meta.size,
			GraphFP:     meta.graphFP,
			PartitionFP: meta.partFP,
		})
	}
	c.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// OpenStats reports live record counts and payload footprint.
func (c *kvCore) OpenStats() OpenStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := c.open
	st.Graphs, st.Partitions, st.Shortcuts, st.Jobs, st.Bytes = 0, 0, 0, 0, 0
	for ik, meta := range c.index {
		st.Bytes += meta.size
		switch ik.kind {
		case kindGraph:
			st.Graphs++
		case kindPartition:
			st.Partitions++
		case kindShortcut:
			st.Shortcuts++
		case kindJob:
			st.Jobs++
		}
	}
	return st
}

// Verify re-reads and fully decodes every live record — the same structural
// and content-hash checks the segment store's Verify performs, minus the
// frame CRC (kv backends have no frames; graph and partition payloads are
// self-verifying, shortcut keys re-derive, job records must decode and
// agree with their key).
func (c *kvCore) Verify() []Problem {
	var problems []Problem
	bad := func(kind string, key service.Fingerprint, err error) {
		problems = append(problems, Problem{Kind: kind, Key: key, Err: err})
	}
	graphs := make(map[service.Fingerprint]*graph.Graph)
	for _, r := range c.Records() {
		var kind byte
		switch r.Kind {
		case "graph":
			kind = kindGraph
		case "partition":
			kind = kindPartition
		case "shortcut":
			kind = kindShortcut
		case "job":
			kind = kindJob
		}
		payload, ok, err := c.payloadOf(kind, r.Key)
		if err != nil {
			bad(r.Kind, r.Key, err)
			continue
		}
		if !ok {
			continue // deleted mid-verify
		}
		switch kind {
		case kindGraph:
			g, err := decodeGraph(payload, r.Key)
			if err != nil {
				bad(r.Kind, r.Key, err)
				continue
			}
			if err := g.Validate(); err != nil {
				bad(r.Kind, r.Key, err)
				continue
			}
			graphs[r.Key] = g
		case kindPartition:
			if len(payload) < 1 || payload[0] != partitionPayloadVersion {
				bad(r.Kind, r.Key, fmt.Errorf("bad payload version"))
			} else if got := service.FingerprintBytes(payload[1:]); got != r.Key {
				bad(r.Kind, r.Key, fmt.Errorf("content hash mismatch"))
			}
		case kindShortcut:
			g, ok := graphs[r.GraphFP]
			if !ok {
				bad(r.Kind, r.Key, fmt.Errorf("references missing graph %s", r.GraphFP))
				continue
			}
			ppay, found, err := c.payloadOf(kindPartition, r.PartitionFP)
			if err != nil || !found {
				bad(r.Kind, r.Key, fmt.Errorf("references missing partition %s (err=%v)", r.PartitionFP, err))
				continue
			}
			parts, err := decodePartition(ppay, r.PartitionFP, g)
			if err != nil {
				bad(r.Kind, r.Key, err)
				continue
			}
			if _, _, err := decodeShortcut(payload, r.Key, c.perms.get(g), g, parts); err != nil {
				bad(r.Kind, r.Key, err)
			}
		case kindJob:
			rec, err := jobs.DecodeRecord(payload)
			if err != nil {
				bad(r.Kind, r.Key, err)
				continue
			}
			if uint64(rec.ID) != uint64(r.Key) {
				bad(r.Kind, r.Key, fmt.Errorf("record claims job id %s", rec.ID))
			}
		}
	}
	return problems
}

// Close marks the backend closed (writes fail, reads miss) and releases the
// payload store.
func (c *kvCore) Close() error {
	c.writeMu.Lock()
	defer c.writeMu.Unlock()
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	return c.ps.close()
}
