package store

import (
	"io"
	"os"
)

// FS is the filesystem surface the disk-backed backends (the segment store
// and the object-directory tier) perform every file operation through. The
// default implementation (osFS) delegates straight to package os; tests
// substitute storetest/errfs to inject short writes, failed fsyncs, failed
// renames, and crash-at-Nth-op schedules without touching the backends'
// logic — the fault-injection half of the storetest conformance suite is
// built entirely on this seam.
//
// Implementations must be safe for concurrent use (the backends call them
// from multiple goroutines, serialized only by their own write locks for
// mutating operations).
type FS interface {
	// OpenFile opens name with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// ReadDir lists the directory with os.ReadDir semantics.
	ReadDir(name string) ([]os.DirEntry, error)
	// Rename atomically replaces newpath with oldpath (os.Rename).
	Rename(oldpath, newpath string) error
	// Remove deletes a file (os.Remove).
	Remove(name string) error
	// MkdirAll creates a directory tree (os.MkdirAll).
	MkdirAll(path string, perm os.FileMode) error
	// SyncDir fsyncs a directory so created/renamed entries are durable.
	// Platforms that cannot sync directories return nil; callers treat the
	// result as best-effort.
	SyncDir(dir string) error
}

// File is the per-file surface the backends need. *os.File implements it
// directly; when a segment file is an *os.File (the default FS) the store
// additionally memory-maps sealed segments — a wrapped File from an
// injected FS stays on the pread path, so every read remains visible to the
// fault injector.
type File interface {
	io.Reader
	io.ReaderAt
	io.Writer
	io.WriterAt
	io.Closer
	Sync() error
	Truncate(size int64) error
	Stat() (os.FileInfo, error)
}

// osFS is the production FS: package os, verbatim.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}

func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
