package store

import (
	"locshort/internal/obs"
)

// storeMetrics holds the store's observed instruments. Gauges (segments,
// bytes, live records) are func-backed over OpenStats and cost nothing off
// the scrape path; append/fsync latency is observed inline under writeMu,
// which already serializes writers.
type storeMetrics struct {
	appendSeconds *obs.Histogram
	fsyncSeconds  *obs.Histogram
	rotations     *obs.Counter
	appends       map[byte]*obs.Counter // by record kind; read-only after init
}

func newStoreMetrics(r *obs.Registry, s *Store) *storeMetrics {
	m := &storeMetrics{
		appendSeconds: r.Histogram("locshort_store_append_seconds",
			"Full record append latency: frame, write, fsync, index install.", nil, nil),
		fsyncSeconds: r.Histogram("locshort_store_fsync_seconds",
			"fsync portion of record appends (zero observations under NoSync).", nil, nil),
		rotations: r.Counter("locshort_store_segment_rotations_total",
			"Active segments retired at the size bound.", nil),
		appends: make(map[byte]*obs.Counter, 5),
	}
	for kind, name := range map[byte]string{
		kindGraph:     "graph",
		kindPartition: "partition",
		kindShortcut:  "shortcut",
		kindJob:       "job",
		kindTombstone: "tombstone",
	} {
		m.appends[kind] = r.Counter("locshort_store_appends_total",
			"Records appended, by kind.", obs.Labels{"kind": name})
	}
	stats := func(load func(OpenStats) float64) func() float64 {
		return func() float64 { return load(s.OpenStats()) }
	}
	r.GaugeFunc("locshort_store_segments", "Segment files on disk.", nil,
		stats(func(o OpenStats) float64 { return float64(o.Segments) }))
	r.GaugeFunc("locshort_store_bytes", "Total size of all segment files.", nil,
		stats(func(o OpenStats) float64 { return float64(o.Bytes) }))
	r.GaugeFunc("locshort_store_mapped_segments",
		"Sealed segments served zero-copy from a read-only memory mapping.", nil,
		stats(func(o OpenStats) float64 { return float64(o.MappedSegments) }))
	r.GaugeFunc("locshort_store_records", "Live records, by kind.", obs.Labels{"kind": "graph"},
		stats(func(o OpenStats) float64 { return float64(o.Graphs) }))
	r.GaugeFunc("locshort_store_records", "Live records, by kind.", obs.Labels{"kind": "partition"},
		stats(func(o OpenStats) float64 { return float64(o.Partitions) }))
	r.GaugeFunc("locshort_store_records", "Live records, by kind.", obs.Labels{"kind": "shortcut"},
		stats(func(o OpenStats) float64 { return float64(o.Shortcuts) }))
	r.GaugeFunc("locshort_store_records", "Live records, by kind.", obs.Labels{"kind": "job"},
		stats(func(o OpenStats) float64 { return float64(o.Jobs) }))
	return m
}
