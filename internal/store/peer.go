package store

import (
	"fmt"
	"sort"
	"time"

	"locshort/internal/graph"
	"locshort/internal/partition"
	"locshort/internal/service"
	"locshort/internal/shortcut"
)

// Peer exchange surface: what internal/cluster moves between nodes. The unit
// of replication is the PeerRecord — a shortcut payload together with the
// graph and partition payloads it depends on, all in the exact canonical
// encodings the store already persists. Because graph and partition payloads
// hash to their own record keys and a shortcut payload re-derives its key
// from its stored inputs, a fetched record proves its own integrity:
// VerifyPeerRecord re-hashes and re-derives everything, so a peer (or a
// man-in-the-middle) cannot make a node accept bytes under a key they do not
// hash to. That property is what makes cross-node replication trustless.

// PeerRecord is one shortcut and its dependency closure, as raw store
// payloads. The fingerprints are the claimed record keys; nothing is trusted
// until VerifyPeerRecord (or ImportShortcut, which calls it) has re-derived
// them from the payload bytes.
type PeerRecord struct {
	Key         service.Fingerprint
	GraphFP     service.Fingerprint
	PartitionFP service.Fingerprint

	GraphPayload     []byte
	PartitionPayload []byte
	ShortcutPayload  []byte
}

// InventoryEntry is one live shortcut record in an inventory listing: the
// key plus the dependency fingerprints, enough for a replica to decide
// whether it should hold the record without fetching any payload.
type InventoryEntry struct {
	Key         service.Fingerprint
	GraphFP     service.Fingerprint
	PartitionFP service.Fingerprint
}

// HasShortcut reports whether a live shortcut record exists for key.
func (s *Store) HasShortcut(key service.Fingerprint) bool {
	return s.has(kindShortcut, key)
}

// GraphKnown reports whether a live graph record exists for fp.
func (s *Store) GraphKnown(fp service.Fingerprint) bool {
	return s.has(kindGraph, fp)
}

// payloadOf reads a live record's payload by kind.
func (s *Store) payloadOf(kind byte, key service.Fingerprint) ([]byte, bool, error) {
	s.mu.RLock()
	ref, ok := s.index[indexKey{kind: kind, key: key}]
	if !ok {
		s.mu.RUnlock()
		return nil, false, nil
	}
	payload, err := s.readPayload(ref)
	s.mu.RUnlock()
	if err != nil {
		return nil, false, err
	}
	return payload, true, nil
}

// GraphPayload returns the raw graph record payload for fp (version byte +
// canonical encoding), suitable for shipping to a peer.
func (s *Store) GraphPayload(fp service.Fingerprint) ([]byte, bool, error) {
	return s.payloadOf(kindGraph, fp)
}

// ShortcutRecord assembles the PeerRecord for key: the shortcut payload and
// the graph and partition payloads it references. ok is false when no live
// shortcut record exists; a live shortcut whose dependencies are missing is
// an integrity error, not a miss.
func (s *Store) ShortcutRecord(key service.Fingerprint) (PeerRecord, bool, error) {
	var rec PeerRecord
	s.mu.RLock()
	ref, ok := s.index[indexKey{kind: kindShortcut, key: key}]
	s.mu.RUnlock()
	if !ok {
		return rec, false, nil
	}
	rec.Key, rec.GraphFP, rec.PartitionFP = key, ref.graphFP, ref.partFP
	var err error
	var found bool
	if rec.ShortcutPayload, found, err = s.payloadOf(kindShortcut, key); err != nil || !found {
		return rec, false, err
	}
	if rec.GraphPayload, found, err = s.payloadOf(kindGraph, ref.graphFP); err != nil {
		return rec, false, err
	} else if !found {
		return rec, false, fmt.Errorf("store: shortcut %s references missing graph %s", key, ref.graphFP)
	}
	if rec.PartitionPayload, found, err = s.payloadOf(kindPartition, ref.partFP); err != nil {
		return rec, false, err
	} else if !found {
		return rec, false, fmt.Errorf("store: shortcut %s references missing partition %s", key, ref.partFP)
	}
	return rec, true, nil
}

// inRange reports whether key lies on the arc (lo, hi] of the fingerprint
// circle, wrapping when lo >= hi; lo == hi means the full circle. The
// convention matches cluster.Range, so ring ownership arcs filter the
// inventory directly.
func inRange(key, lo, hi uint64) bool {
	switch {
	case lo == hi:
		return true
	case lo < hi:
		return key > lo && key <= hi
	default:
		return key > lo || key <= hi
	}
}

// ShortcutInventory lists the live shortcut records whose keys fall on the
// arc (lo, hi] (wrapping; lo == hi lists everything), sorted by key. It
// reads only the index — no payloads — so a full-inventory scan during an
// anti-entropy round is cheap even on a large store.
func (s *Store) ShortcutInventory(lo, hi uint64) []InventoryEntry {
	s.mu.RLock()
	out := make([]InventoryEntry, 0, 64)
	for ik, ref := range s.index {
		if ik.kind != kindShortcut || !inRange(uint64(ik.key), lo, hi) {
			continue
		}
		out = append(out, InventoryEntry{Key: ik.key, GraphFP: ref.graphFP, PartitionFP: ref.partFP})
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// GraphFingerprints lists the live graph record keys, sorted.
func (s *Store) GraphFingerprints() []service.Fingerprint {
	s.mu.RLock()
	out := make([]service.Fingerprint, 0, 8)
	for ik := range s.index {
		if ik.kind == kindGraph {
			out = append(out, ik.key)
		}
	}
	s.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EncodeGraphPayload renders the graph record payload for g, byte-identical
// to what PutGraph persists (so a pushed graph deduplicates on the peer).
func EncodeGraphPayload(g *graph.Graph) []byte { return encodeGraph(g) }

// DecodeGraphPayload reconstructs a graph from a record payload, verifying
// that the payload hashes to fp.
func DecodeGraphPayload(payload []byte, fp service.Fingerprint) (*graph.Graph, error) {
	return decodeGraph(payload, fp)
}

// DecodeShortcutPayload reconstructs a shortcut record payload against the
// caller's representative graph and requested partition — the peer-fetch
// serving path, where the engine needs the result expressed in its own live
// edge IDs. All of decodeShortcut's verification applies: structural
// validation plus re-derivation of key from the stored inputs.
func DecodeShortcutPayload(payload []byte, key service.Fingerprint,
	g *graph.Graph, parts *partition.Partition) (*shortcut.Result, time.Duration, error) {
	return decodeShortcut(payload, key, newEdgePerm(g), g, parts)
}

// VerifyPeerRecord fully verifies a fetched record against its claimed
// fingerprints: the graph payload must hash to GraphFP, the partition
// payload to PartitionFP (and decode to connected parts of that graph), the
// shortcut payload must reference exactly those dependencies, validate
// structurally, and re-derive Key from its stored (graph, partition,
// options). On success it returns the decoded objects; nothing about the
// record was taken on trust.
func VerifyPeerRecord(rec PeerRecord) (*graph.Graph, *partition.Partition, *shortcut.Result, time.Duration, error) {
	g, err := decodeGraph(rec.GraphPayload, rec.GraphFP)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	parts, err := decodePartition(rec.PartitionPayload, rec.PartitionFP, g)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	meta, err := parseShortcutMeta(rec.ShortcutPayload)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	if meta.graphFP != rec.GraphFP || meta.partFP != rec.PartitionFP {
		return nil, nil, nil, 0, fmt.Errorf(
			"store: shortcut %s payload references (%s, %s), record claims (%s, %s)",
			rec.Key, meta.graphFP, meta.partFP, rec.GraphFP, rec.PartitionFP)
	}
	res, bt, err := decodeShortcut(rec.ShortcutPayload, rec.Key, newEdgePerm(g), g, parts)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return g, parts, res, bt, nil
}

// ImportShortcut verifies rec end to end and durably installs the records a
// node is missing: the graph and partition payloads are appended only if
// absent, then the shortcut record. It returns the decoded graph (so the
// caller can register it with a serving engine) and whether the shortcut was
// actually appended — false means a record for the key already existed and
// nothing was written. The verify-then-append order plus writeMu makes the
// import atomic with respect to concurrent DeleteGraph tombstones: a record
// can never be resurrected under a tombstone written first.
func (s *Store) ImportShortcut(rec PeerRecord) (*graph.Graph, bool, error) {
	g, _, _, _, err := VerifyPeerRecord(rec)
	if err != nil {
		return nil, false, err
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	if s.has(kindShortcut, rec.Key) {
		return g, false, nil
	}
	if !s.has(kindGraph, rec.GraphFP) {
		if err := s.appendRecord(kindGraph, rec.GraphFP, rec.GraphPayload); err != nil {
			return g, false, err
		}
	}
	if !s.has(kindPartition, rec.PartitionFP) {
		if err := s.appendRecord(kindPartition, rec.PartitionFP, rec.PartitionPayload); err != nil {
			return g, false, err
		}
	}
	if err := s.appendRecord(kindShortcut, rec.Key, rec.ShortcutPayload); err != nil {
		return g, false, err
	}
	return g, true, nil
}
