//go:build unix

package store

import (
	"os"
	"syscall"
)

// mmapFile maps the first size bytes of f read-only and shared. Shared, not
// private, so the mapping observes the file's bytes as they are on disk — a
// sealed segment never changes, but Verify can still catch corruption a
// misbehaving external writer introduced after open.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, syscall.EINVAL
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(b []byte) error { return syscall.Munmap(b) }
