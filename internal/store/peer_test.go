package store

import (
	"path/filepath"
	"testing"
	"time"

	"locshort/internal/service"
	"locshort/internal/shortcut"
)

// peerFixture persists one (graph, partition, shortcut) triple into a fresh
// store and returns the store plus the record identities.
func peerFixture(t *testing.T, spec, partSpec string, seed int64) (
	*Store, service.Fingerprint, service.Fingerprint) {
	t.Helper()
	src := mustOpen(t, filepath.Join(t.TempDir(), "src"))
	t.Cleanup(func() { src.Close() })
	g, p, res := buildFixture(t, spec, partSpec, seed)
	gfp := service.FingerprintGraph(g)
	key := service.ShortcutKey(gfp, p, shortcut.Options{})
	if err := src.PutGraph(gfp, g); err != nil {
		t.Fatal(err)
	}
	if err := src.PutShortcut(key, gfp, p, shortcut.Options{}, res, 42*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	return src, gfp, key
}

// TestPeerRecordRoundTrip: a record exported from one store imports into
// another, verifies end to end, and serves the identical shortcut.
func TestPeerRecordRoundTrip(t *testing.T) {
	src, gfp, key := peerFixture(t, "grid:8x8", "blobs:4", 1)

	rec, ok, err := src.ShortcutRecord(key)
	if err != nil || !ok {
		t.Fatalf("ShortcutRecord: ok=%v err=%v", ok, err)
	}
	if rec.Key != key || rec.GraphFP != gfp {
		t.Fatalf("record identities: %+v", rec)
	}

	g2, parts2, res2, bt, err := VerifyPeerRecord(rec)
	if err != nil {
		t.Fatalf("VerifyPeerRecord: %v", err)
	}
	if bt != 42*time.Millisecond {
		t.Fatalf("build time: %v", bt)
	}
	if service.FingerprintGraph(g2) != gfp {
		t.Fatal("decoded graph does not re-hash to the claimed fingerprint")
	}
	if got := service.ShortcutKey(gfp, parts2, shortcut.Options{}); got != key {
		t.Fatalf("decoded record re-derives key %s, want %s", got, key)
	}
	if res2 == nil || res2.Shortcut == nil {
		t.Fatal("decoded shortcut is empty")
	}

	dst := mustOpen(t, filepath.Join(t.TempDir(), "dst"))
	defer dst.Close()
	gImp, imported, err := dst.ImportShortcut(rec)
	if err != nil || !imported {
		t.Fatalf("ImportShortcut: imported=%v err=%v", imported, err)
	}
	if gImp == nil {
		t.Fatal("import returned no graph for engine registration")
	}
	if !dst.HasShortcut(key) || !dst.GraphKnown(gfp) {
		t.Fatal("import left records missing")
	}
	// The imported record round-trips through the normal read path.
	got, gotBT, ok, err := dst.GetShortcut(key, gImp, parts2)
	if err != nil || !ok {
		t.Fatalf("GetShortcut after import: ok=%v err=%v", ok, err)
	}
	if gotBT != 42*time.Millisecond || got.Delta != res2.Delta {
		t.Fatalf("imported record differs: bt=%v delta=%d", gotBT, got.Delta)
	}
	// Re-import is a verified no-op.
	if _, again, err := dst.ImportShortcut(rec); err != nil || again {
		t.Fatalf("re-import: imported=%v err=%v", again, err)
	}
}

// TestPeerRecordTamperRejected: flipping any payload byte (or lying about
// a fingerprint) fails verification and imports nothing.
func TestPeerRecordTamperRejected(t *testing.T) {
	src, _, key := peerFixture(t, "grid:8x8", "blobs:4", 2)
	pristine, ok, err := src.ShortcutRecord(key)
	if err != nil || !ok {
		t.Fatal("fixture record missing")
	}

	mutate := func(name string, f func(*PeerRecord)) {
		rec := pristine
		// Deep-copy the payload being flipped so cases stay independent.
		rec.GraphPayload = append([]byte(nil), pristine.GraphPayload...)
		rec.PartitionPayload = append([]byte(nil), pristine.PartitionPayload...)
		rec.ShortcutPayload = append([]byte(nil), pristine.ShortcutPayload...)
		f(&rec)
		if _, _, _, _, err := VerifyPeerRecord(rec); err == nil {
			t.Errorf("%s: verification accepted a tampered record", name)
		}
		dst := mustOpen(t, filepath.Join(t.TempDir(), name))
		defer dst.Close()
		if _, imported, err := dst.ImportShortcut(rec); err == nil || imported {
			t.Errorf("%s: import accepted a tampered record", name)
		}
		if dst.HasShortcut(rec.Key) || dst.GraphKnown(rec.GraphFP) {
			t.Errorf("%s: rejected import left records behind", name)
		}
	}

	mutate("graph-payload-bit", func(r *PeerRecord) {
		r.GraphPayload[len(r.GraphPayload)/2] ^= 0x01
	})
	mutate("partition-payload-bit", func(r *PeerRecord) {
		r.PartitionPayload[len(r.PartitionPayload)/2] ^= 0x01
	})
	mutate("shortcut-payload-bit", func(r *PeerRecord) {
		r.ShortcutPayload[len(r.ShortcutPayload)-1] ^= 0x01
	})
	mutate("lying-key", func(r *PeerRecord) {
		r.Key ^= 1
	})
	mutate("lying-graph-fp", func(r *PeerRecord) {
		r.GraphFP ^= 1
	})
	mutate("lying-partition-fp", func(r *PeerRecord) {
		r.PartitionFP ^= 1
	})
}

// TestShortcutInventoryRanges: the (lo, hi] wrapping arc convention.
func TestShortcutInventoryRanges(t *testing.T) {
	st := mustOpen(t, filepath.Join(t.TempDir(), "inv"))
	defer st.Close()
	// Three distinct records: vary the partition seed.
	keys := make([]service.Fingerprint, 0, 3)
	for _, partSpec := range []string{"blobs:2", "blobs:4", "blobs:8"} {
		g, p, res := buildFixture(t, "grid:8x8", partSpec, 1)
		gfp := service.FingerprintGraph(g)
		key := service.ShortcutKey(gfp, p, shortcut.Options{})
		if err := st.PutGraph(gfp, g); err != nil {
			t.Fatal(err)
		}
		if err := st.PutShortcut(key, gfp, p, shortcut.Options{}, res, time.Millisecond); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, key)
	}

	all := st.ShortcutInventory(0, 0) // lo == hi: full circle
	if len(all) != len(keys) {
		t.Fatalf("full inventory has %d entries, want %d", len(all), len(keys))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].Key >= all[i].Key {
			t.Fatal("inventory not sorted by key")
		}
	}

	// A half-open arc pinned just around one key contains exactly it.
	target := uint64(all[1].Key)
	got := st.ShortcutInventory(target-1, target)
	if len(got) != 1 || got[0].Key != all[1].Key {
		t.Fatalf("arc (k-1, k] = %v, want exactly key %s", got, all[1].Key)
	}
	// The complement arc (k, k-1] wraps and holds the other records.
	rest := st.ShortcutInventory(target, target-1)
	if len(rest) != len(keys)-1 {
		t.Fatalf("wrapped complement has %d entries, want %d", len(rest), len(keys)-1)
	}
	for _, e := range rest {
		if e.Key == all[1].Key {
			t.Fatal("complement arc contains the excluded key")
		}
	}

	// Graph fingerprints listing is sorted and complete.
	fps := st.GraphFingerprints()
	if len(fps) != 1 { // same grid graph for all three records
		t.Fatalf("graph fingerprints: %d, want 1", len(fps))
	}
}

// TestShortcutRecordMissingDependency: a live shortcut whose graph record
// was tombstoned is an integrity error, not a silent miss.
func TestShortcutRecordMissing(t *testing.T) {
	st := mustOpen(t, filepath.Join(t.TempDir(), "missing"))
	defer st.Close()
	if _, ok, err := st.ShortcutRecord(service.Fingerprint(12345)); ok || err != nil {
		t.Fatalf("absent record: ok=%v err=%v, want clean miss", ok, err)
	}
	if st.HasShortcut(service.Fingerprint(12345)) || st.GraphKnown(service.Fingerprint(12345)) {
		t.Fatal("empty store claims records")
	}
}
