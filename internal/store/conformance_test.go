package store_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"locshort/internal/cli"
	"locshort/internal/service"
	"locshort/internal/shortcut"
	"locshort/internal/store"
	"locshort/internal/store/storetest"
	"locshort/internal/store/storetest/errfs"
)

// The conformance suite is the executable form of the store.Backend
// contract. Every backend runs the identical suite; the segment store is
// the reference implementation the others are proven equivalent to.

func openSegment(t testing.TB, dir string) store.Backend {
	t.Helper()
	s, err := store.Open(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func segmentFactory() storetest.Factory {
	return storetest.Factory{
		Name:   "segment",
		New:    openSegment,
		Reopen: openSegment,
		NewFS: func(t testing.TB, dir string, fsys store.FS) (store.Backend, error) {
			return store.Open(dir, store.Options{FS: fsys})
		},
		Corrupt: corruptSegment,
		HasGC:   true,
	}
}

func TestConformanceSegment(t *testing.T) {
	storetest.Run(t, segmentFactory())
}

func TestConformanceMem(t *testing.T) {
	storetest.Run(t, storetest.Factory{
		Name: "mem",
		New:  func(t testing.TB, dir string) store.Backend { return store.OpenMem() },
	})
}

func openObjDir(t testing.TB, dir string) store.Backend {
	t.Helper()
	o, err := store.OpenObjDir(dir, store.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func TestConformanceObjDir(t *testing.T) {
	storetest.Run(t, storetest.Factory{
		Name:   "objdir",
		New:    openObjDir,
		Reopen: openObjDir,
		NewFS: func(t testing.TB, dir string, fsys store.FS) (store.Backend, error) {
			return store.OpenObjDir(dir, store.Options{FS: fsys})
		},
		Corrupt: corruptObjDir,
		HasGC:   true,
	})
}

// corruptSegment flips a payload byte near the tail of the first segment
// file.
func corruptSegment(t testing.TB, dir string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".seg") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(data) < 64 {
			continue
		}
		data[len(data)-3] ^= 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatal("no segment file to corrupt")
}

// corruptObjDir flips the last byte of one stored graph object.
func corruptObjDir(t testing.TB, dir string) {
	t.Helper()
	gdir := filepath.Join(dir, "graphs")
	entries, err := os.ReadDir(gdir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".obj") {
			continue
		}
		path := filepath.Join(gdir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[len(data)-1] ^= 0x01
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	t.Fatal("no graph object to corrupt")
}

// TestSegmentRotationFaultRecovery is the regression test for a real bug
// the fault suite shook out: startSegment created the next segment file
// with O_EXCL, and a failure after creation (header write or fsync) left
// the file behind, so every rotation retry hit EEXIST and the store was
// permanently wedged after one transient fault. The fix removes the file
// on the failure path; this test drives a rotation into an injected write
// fault and asserts the store recovers once the fault clears.
func TestSegmentRotationFaultRecovery(t *testing.T) {
	dir := t.TempDir()
	efs := errfs.New()
	s, err := store.Open(dir, store.Options{FS: efs, NoSync: true, SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Fail every write that lands in segment 2 while armed: the rotation's
	// header write dies after the O_EXCL create succeeded.
	armed := true
	efs.SetHook(func(op errfs.Op) errfs.Fault {
		if armed && op.Kind == "write" && strings.HasSuffix(op.Path, "000002.seg") {
			return errfs.Fault{Err: errfs.ErrInjected}
		}
		return errfs.Fault{}
	})

	specs := []string{"grid:6x7", "torus:5x5", "ktree:60,3", "random:50,120", "grid:7x7", "torus:6x6"}
	var rotationFault bool
	for i, spec := range specs {
		g, _, err := cli.ParseGraph(spec, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		if err := s.PutGraph(service.FingerprintGraph(g), g); err != nil {
			if !errors.Is(err, errfs.ErrInjected) {
				t.Fatalf("unexpected error flavor: %v", err)
			}
			rotationFault = true
			break
		}
	}
	if !rotationFault {
		t.Fatal("workload never triggered a rotation; shrink SegmentBytes")
	}

	// Fault clears; the very next put must rotate cleanly (before the fix:
	// EEXIST forever).
	armed = false
	g, _, err := cli.ParseGraph("wheel:40", 1)
	if err != nil {
		t.Fatal(err)
	}
	fp := service.FingerprintGraph(g)
	if err := s.PutGraph(fp, g); err != nil {
		t.Fatalf("rotation still wedged after fault cleared: %v", err)
	}
	if _, ok, err := s.GetGraph(fp); err != nil || !ok {
		t.Fatalf("GetGraph after recovered rotation: ok=%v err=%v", ok, err)
	}
	if problems := s.Verify(); len(problems) != 0 {
		t.Fatalf("Verify after recovery: %v", problems[0])
	}
}

// TestSegmentGCCrashTmpSweep is the regression test for the second bug the
// fault suite shook out: a GC that crashed before its rename left
// gc.seg.tmp on disk forever (replay ignores the name, and nothing ever
// deleted it). Open now sweeps it. The test crashes a GC at its rename,
// checks the tmp file survived the crash, and asserts a reopen removes it
// with all records intact.
func TestSegmentGCCrashTmpSweep(t *testing.T) {
	dir := t.TempDir()
	efs := errfs.New()
	s, err := store.Open(dir, store.Options{FS: efs, NoSync: true})
	if err != nil {
		t.Fatal(err)
	}

	var fps []service.Fingerprint
	for i, spec := range []string{"grid:6x6", "torus:4x4", "wheel:30"} {
		g, _, err := cli.ParseGraph(spec, int64(i))
		if err != nil {
			t.Fatal(err)
		}
		fp := service.FingerprintGraph(g)
		if err := s.PutGraph(fp, g); err != nil {
			t.Fatal(err)
		}
		fps = append(fps, fp)
	}
	if err := s.DeleteGraph(fps[0]); err != nil {
		t.Fatal(err)
	}

	// Crash the process (as far as the FS is concerned) at the GC's
	// rename: the compacted tmp segment is fully written but never
	// renamed, and the in-process cleanup can no longer run.
	efs.SetHook(func(op errfs.Op) errfs.Fault {
		if op.Kind == "rename" {
			efs.Crash()
			return errfs.Fault{Err: errfs.ErrCrashed}
		}
		return errfs.Fault{}
	})
	if _, err := s.GC(); err == nil {
		t.Fatal("GC succeeded through a crashed rename")
	}
	s.Close() // errors expected; the FS is dead

	tmpPath := filepath.Join(dir, "gc.seg.tmp")
	if _, err := os.Stat(tmpPath); err != nil {
		t.Fatalf("crashed GC should have left %s behind: %v", tmpPath, err)
	}

	s2 := openSegment(t, dir)
	defer s2.Close()
	if _, err := os.Stat(tmpPath); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("reopen did not sweep %s (stat err=%v)", tmpPath, err)
	}
	for _, fp := range fps[1:] {
		if _, ok, err := s2.GetGraph(fp); err != nil || !ok {
			t.Fatalf("record lost across crashed GC: ok=%v err=%v", ok, err)
		}
	}
	if _, ok, _ := s2.GetGraph(fps[0]); ok {
		t.Fatal("deleted graph resurrected by crashed GC")
	}
	if problems := s2.Verify(); len(problems) != 0 {
		t.Fatalf("Verify after crashed GC: %v", problems[0])
	}
}

// FuzzOpen opens a store directory whose single segment is attacker- (or
// bit-rot-) controlled bytes and asserts the invariants replay promises:
// no panic, and no graph served whose content does not hash back to its
// key. Seeds are a real segment from a populated store plus truncations.
func FuzzOpen(f *testing.F) {
	seedDir := f.TempDir()
	s, err := store.Open(seedDir, store.Options{NoSync: true})
	if err != nil {
		f.Fatal(err)
	}
	g, _, err := cli.ParseGraph("grid:5x5", 1)
	if err != nil {
		f.Fatal(err)
	}
	parts, err := cli.ParsePartition(g, "blobs:3", 1)
	if err != nil {
		f.Fatal(err)
	}
	res, err := shortcut.Build(g, parts, shortcut.Options{})
	if err != nil {
		f.Fatal(err)
	}
	gfp := service.FingerprintGraph(g)
	if err := s.PutGraph(gfp, g); err != nil {
		f.Fatal(err)
	}
	key := service.ShortcutKey(gfp, parts, shortcut.Options{})
	if err := s.PutShortcut(key, gfp, parts, shortcut.Options{}, res, 0); err != nil {
		f.Fatal(err)
	}
	if err := s.PutJob(3, []byte{1, '{', '}'}); err != nil {
		f.Fatal(err)
	}
	if err := s.Close(); err != nil {
		f.Fatal(err)
	}
	seed, err := os.ReadFile(filepath.Join(seedDir, "000001.seg"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add(seed[:len(seed)-1])
	f.Add([]byte{})
	f.Add([]byte("LSSTOR01"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "000001.seg"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := store.Open(dir, store.Options{NoSync: true})
		if err != nil {
			return // rejecting garbage is fine; panicking is not
		}
		defer s.Close()
		for _, r := range s.Records() {
			if r.Kind != "graph" {
				continue
			}
			g, ok, err := s.GetGraph(r.Key)
			if err != nil || !ok {
				continue // an error (or a raced miss) is an acceptable answer
			}
			if got := service.FingerprintGraph(g); got != r.Key {
				t.Fatalf("replay admitted graph %s whose content hashes to %s", r.Key, got)
			}
		}
		s.Verify() // must not panic, whatever replay admitted
	})
}
