package locshort_test

import (
	"math/rand"
	"testing"

	"locshort"
)

// TestFacadeEndToEnd drives the full pipeline through the public API only:
// generate, partition, build, measure, install routing, aggregate, and run
// the two headline algorithms — the integration path a downstream user
// takes.
func TestFacadeEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := locshort.Grid(12, 12)
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate = %v", err)
	}
	p, err := locshort.BFSBlobs(g, 12, rng)
	if err != nil {
		t.Fatalf("BFSBlobs = %v", err)
	}
	res, err := locshort.Build(g, p, locshort.BuildOptions{})
	if err != nil {
		t.Fatalf("Build = %v", err)
	}
	q := locshort.Measure(res.Shortcut)
	if q.CoveredParts != 12 {
		t.Fatalf("covered %d parts, want 12", q.CoveredParts)
	}
	if q.Congestion > res.CongestionThreshold*res.Iterations {
		t.Errorf("congestion %d above bound", q.Congestion)
	}

	routing, err := locshort.NewPARouting(res.Shortcut)
	if err != nil {
		t.Fatalf("NewPARouting = %v", err)
	}
	values := make([]locshort.Payload, g.NumNodes())
	want := make([]int64, p.NumParts())
	for v := range values {
		values[v] = locshort.Payload{int64(v), 0, 0}
		want[p.PartOf[v]] += int64(v)
	}
	pa, err := locshort.PartwiseAggregate(g, routing, locshort.OpSum, values, 3, true, 8192)
	if err != nil {
		t.Fatalf("PartwiseAggregate = %v", err)
	}
	for i := range want {
		if pa.PartResult[i][0] != want[i] {
			t.Errorf("part %d sum = %d, want %d", i, pa.PartResult[i][0], want[i])
		}
	}

	// Min cut on the unit-weight graph (MinCut counts edge cardinality;
	// Stoer-Wagner must see the same unit capacities).
	sw, err := locshort.StoerWagner(g)
	if err != nil {
		t.Fatalf("StoerWagner = %v", err)
	}
	cut, err := locshort.MinCut(g, locshort.MinCutOptions{
		Seed: 7,
		MST:  locshort.MSTOptions{Provider: locshort.ProviderCentral},
	})
	if err != nil {
		t.Fatalf("MinCut = %v", err)
	}
	if cut.Value != int64(sw) {
		t.Errorf("MinCut %d != Stoer-Wagner %v", cut.Value, sw)
	}

	locshort.RandomizeWeights(g, rng)
	_, kruskal := locshort.Kruskal(g)
	mst, err := locshort.MST(g, locshort.MSTOptions{Provider: locshort.ProviderCentralAdaptive, Seed: 5})
	if err != nil {
		t.Fatalf("MST = %v", err)
	}
	if d := mst.Weight - kruskal; d > 1e-9 || d < -1e-9 {
		t.Errorf("MST weight %v != Kruskal %v", mst.Weight, kruskal)
	}
}

// TestFacadeCustomProtocol exercises the public simulator surface with a
// minimal broadcast protocol (the examples/protocol pattern).
func TestFacadeCustomProtocol(t *testing.T) {
	g := locshort.Star(8)
	got := make([]int64, g.NumNodes())
	procs := make([]locshort.Proc, g.NumNodes())
	for v := 0; v < g.NumNodes(); v++ {
		v := v
		procs[v] = locshort.ProcFunc(func(ctx *locshort.NodeContext) {
			if ctx.Node == 0 && ctx.Round == 0 {
				ctx.Broadcast(locshort.Msg{A: 42})
			}
			for _, in := range ctx.In {
				got[v] = in.Msg.A
			}
			if ctx.Round >= 1 {
				ctx.Halt()
			}
		})
	}
	net, err := locshort.NewNetwork(g, procs)
	if err != nil {
		t.Fatalf("NewNetwork = %v", err)
	}
	if _, err := net.Run(8); err != nil {
		t.Fatalf("Run = %v", err)
	}
	for v := 1; v < g.NumNodes(); v++ {
		if got[v] != 42 {
			t.Errorf("leaf %d received %d, want 42", v, got[v])
		}
	}
}

// TestFacadeCertify drives the certifying path through the public API.
func TestFacadeCertify(t *testing.T) {
	lb, err := locshort.LowerBound(6, 32)
	if err != nil {
		t.Fatal(err)
	}
	p, err := locshort.NewPartition(lb.G, lb.Rows)
	if err != nil {
		t.Fatal(err)
	}
	res, err := locshort.Build(lb.G, p, locshort.BuildOptions{
		Delta:            1,
		CongestionFactor: 1,
		BlockFactor:      1,
		MaxIterations:    3,
		Certify:          true,
		CertAttempts:     400,
		Rng:              rand.New(rand.NewSource(5)),
	})
	if err == nil {
		t.Fatal("reduced-constant Build succeeded unexpectedly")
	}
	if len(res.Certificates) == 0 {
		t.Fatal("no certificate extracted")
	}
	m := res.Certificates[0]
	if err := m.Validate(lb.G); err != nil {
		t.Errorf("certificate invalid: %v", err)
	}
	if m.Density() <= 1 {
		t.Errorf("certificate density %v <= 1", m.Density())
	}
}

// TestFacadeLowerBoundQuality checks Lemma 3.2 through the public API.
func TestFacadeLowerBoundQuality(t *testing.T) {
	lb, err := locshort.LowerBound(5, 12)
	if err != nil {
		t.Fatal(err)
	}
	p, err := locshort.NewPartition(lb.G, lb.Rows)
	if err != nil {
		t.Fatal(err)
	}
	for _, build := range []func() (*locshort.Shortcut, error){
		func() (*locshort.Shortcut, error) {
			r, err := locshort.Build(lb.G, p, locshort.BuildOptions{})
			if err != nil {
				return nil, err
			}
			return r.Shortcut, nil
		},
		func() (*locshort.Shortcut, error) { return locshort.TrivialShortcut(lb.G, p, nil) },
		func() (*locshort.Shortcut, error) { return locshort.EmptyShortcut(lb.G, p), nil },
	} {
		s, err := build()
		if err != nil {
			t.Fatal(err)
		}
		if q := locshort.Measure(s); float64(q.Value()) < lb.QualityLowerBound {
			t.Errorf("quality %d beats the Lemma 3.2 bound %v", q.Value(), lb.QualityLowerBound)
		}
	}
}

// TestFacadeSubgraphConnectivity covers the E12 application via the facade.
func TestFacadeSubgraphConnectivity(t *testing.T) {
	g := locshort.Wheel(32)
	in := make([]bool, g.NumEdges())
	for id := 0; id < g.NumEdges(); id++ {
		e := g.Edge(id)
		in[id] = e.U != 0 && e.V != 0 // rim only
	}
	in[len(in)-1] = false // cut the rim once: still one rim component? no: path
	res, err := locshort.SubgraphComponents(g, in, locshort.MSTOptions{Seed: 3})
	if err != nil {
		t.Fatalf("SubgraphComponents = %v", err)
	}
	want := locshort.ReferenceSubgraphComponents(g, in)
	if !locshort.SameComponents(res.Label, want) {
		t.Error("labels disagree with reference")
	}
}
