// Package locshort is a complete Go implementation of
//
//	Ghaffari & Haeupler, "Low-Congestion Shortcuts for Graphs Excluding
//	Dense Minors", PODC 2021 (arXiv:2008.03091),
//
// together with everything the paper builds on: a CONGEST-model network
// simulator, the centralized and distributed shortcut constructions, the
// part-wise aggregation primitive with randomized contention scheduling,
// and the shortcut-based minimum spanning tree and minimum cut algorithms.
//
// # Quick start
//
//	g := locshort.Grid(32, 32)                       // a planar network
//	p, _ := locshort.BFSBlobs(g, 32, rng)            // 32 connected parts
//	res, _ := locshort.Build(g, p, locshort.BuildOptions{})
//	q := locshort.Measure(res.Shortcut)
//	fmt.Println(q.Congestion, q.Dilation)            // O(δD log n), O(δD)
//
// The central objects:
//
//   - Graph: undirected multigraph with stable edge IDs (the congestion
//     accounting unit) and generators for every family evaluated in the
//     paper, including the Lemma 3.2 lower-bound topology.
//   - Partition: node-disjoint connected parts (Definition 2.1).
//   - Build: the Theorem 3.1 construction — tree-restricted partial
//     shortcuts via the overcongested-edge process, the Observation 2.7
//     halving loop, and a parameter-free doubling search over δ'; with
//     BuildOptions.Certify it becomes the certifying algorithm of the
//     Section 3.1 remark, emitting dense-minor witnesses on failure.
//   - Construct: the Theorem 1.5 distributed construction on the CONGEST
//     simulator, returning routing state for PartwiseAggregate.
//   - MST, MinCut: Corollaries 1.6 and 1.7.
//   - ServiceEngine: the concurrent serving layer — a content-addressed
//     shortcut cache with singleflight builds and a bounded worker pool,
//     the in-process core of the cmd/locshortd daemon. With a DurableStore
//     (OpenStore) plugged into ServiceConfig.Store, built shortcuts
//     persist and the engine warm-starts across restarts.
//
// See DESIGN.md for the architecture (§4 "Service layer" on
// fingerprinting, caching, and the job lifecycle; §5 "Builder and memory
// discipline"; §6 "Persistence and warm-start"), OPERATIONS.md for running
// the daemon, and EXPERIMENTS.md for the measured reproduction of every
// theorem, lemma, and corollary.
package locshort

import (
	"locshort/internal/congest"
	"locshort/internal/dist"
	"locshort/internal/graph"
	"locshort/internal/minor"
	"locshort/internal/partition"
	"locshort/internal/service"
	"locshort/internal/shortcut"
	"locshort/internal/store"
	"locshort/internal/tree"
)

// Graph types and generators (see internal/graph).
type (
	// Graph is an undirected multigraph with stable edge IDs.
	Graph = graph.Graph
	// Edge is an undirected weighted edge.
	Edge = graph.Edge
	// Arc is one direction of an edge in an adjacency list.
	Arc = graph.Arc
	// LowerBoundGraph is the Lemma 3.2 / Figure 3.2 hard instance.
	LowerBoundGraph = graph.LowerBoundGraph
)

// Graph constructors and algorithms re-exported from internal/graph.
var (
	NewGraph          = graph.New
	Path              = graph.Path
	Cycle             = graph.Cycle
	Complete          = graph.Complete
	Star              = graph.Star
	Wheel             = graph.Wheel
	Grid              = graph.Grid
	Torus             = graph.Torus
	KTree             = graph.KTree
	Caterpillar       = graph.Caterpillar
	RandomConnected   = graph.RandomConnected
	LowerBound        = graph.LowerBound
	RandomizeWeights  = graph.RandomizeWeights
	Diameter          = graph.Diameter
	Connected         = graph.Connected
	Kruskal           = graph.Kruskal
	StoerWagner       = graph.StoerWagner
	TorusChain        = graph.TorusChain
	SequentialBridges = graph.Bridges
)

// Partition types and constructors (see internal/partition).
type Partition = partition.Partition

// Partition constructors re-exported from internal/partition.
var (
	NewPartition = partition.New
	BFSBlobs     = partition.BFSBlobs
	FromLabels   = partition.FromLabels
	GridRows     = partition.GridRows
	WheelRim     = partition.WheelRim
	Singletons   = partition.Singletons
)

// Rooted trees (see internal/tree).
type RootedTree = tree.Rooted

// BFSTree roots a BFS tree of g at the given node.
var BFSTree = tree.FromBFS

// Shortcut machinery: the paper's primary contribution
// (see internal/shortcut).
type (
	// Shortcut assigns each part a subgraph H_i (Definition 2.2).
	Shortcut = shortcut.Shortcut
	// Quality is measured congestion/dilation/blocks.
	Quality = shortcut.Quality
	// BuildOptions configures Build.
	BuildOptions = shortcut.Options
	// BuildResult is Build's outcome.
	BuildResult = shortcut.Result
	// Partial is one run of the Theorem 3.1 overcongested-edge process.
	Partial = shortcut.Partial
	// ShortcutBuilder is the reusable flat-state construction core: it
	// owns the scratch memory of the Theorem 3.1 process and races the
	// doubling search's delta' levels speculatively. Not safe for
	// concurrent use; pool Builders instead (the service engine does).
	ShortcutBuilder = shortcut.Builder
)

// Shortcut functions re-exported from internal/shortcut.
var (
	Build              = shortcut.Build
	NewShortcutBuilder = shortcut.NewBuilder
	BuildPartial       = shortcut.BuildPartial
	Measure            = shortcut.Measure
	TrivialShortcut    = shortcut.Trivial
	EmptyShortcut      = shortcut.NewEmpty
	ExtractCertificate = shortcut.ExtractCertificate
	ChooseRoot         = shortcut.ChooseRoot
	// BuildSequentialReference is the preserved pre-Builder construction
	// path (map-based state, strictly sequential doubling search), kept as
	// the executable performance and equivalence baseline.
	BuildSequentialReference = shortcut.BuildReference
)

// ErrDeltaTooSmall is returned by Build for infeasible fixed delta levels.
var ErrDeltaTooSmall = shortcut.ErrDeltaTooSmall

// Graph minors (see internal/minor).
type MinorMapping = minor.Mapping

// Minor-density helpers re-exported from internal/minor.
var (
	GreedyDenseMinor      = minor.GreedyDenseMinor
	GenusDensityBound     = minor.GenusDensityBound
	TreewidthDensityBound = minor.TreewidthDensityBound
)

// PlanarDensityBound bounds the density of planar minors (Euler).
const PlanarDensityBound = minor.PlanarDensityBound

// CONGEST simulator (see internal/congest).
type (
	// Network is a synchronous CONGEST network.
	Network = congest.Network
	// Proc is a node program.
	Proc = congest.Proc
	// ProcFunc adapts a function to Proc.
	ProcFunc = congest.ProcFunc
	// NodeContext is a node's per-round view (send, inbox, halt).
	NodeContext = congest.Context
	// Msg is an O(log n)-bit message.
	Msg = congest.Msg
)

// NewNetwork creates a CONGEST network over g with one Proc per node.
var NewNetwork = congest.NewNetwork

// Distributed algorithms (see internal/dist).
type (
	// ConstructOptions configures the Theorem 1.5 distributed
	// construction; ConstructResult carries the shortcut, routing state,
	// and round breakdown.
	ConstructOptions = dist.ConstructOptions
	ConstructResult  = dist.ConstructResult
	// PARouting is installed per-part aggregation routing state.
	PARouting = dist.PARouting
	// Payload is a part-wise aggregation value.
	Payload = dist.Payload
	// MSTOptions / MSTResult drive the Corollary 1.6 algorithm.
	MSTOptions = dist.MSTOptions
	MSTResult  = dist.MSTResult
	// MinCutOptions / MinCutResult drive the Corollary 1.7 algorithm.
	MinCutOptions = dist.MinCutOptions
	MinCutResult  = dist.MinCutResult
	// CCResult reports sub-graph connectivity (a Section 1.2 application).
	CCResult = dist.CCResult
	// RoundBreakdown itemizes measured/synchronization/charged rounds.
	RoundBreakdown = dist.Rounds
)

// Distributed algorithm entry points re-exported from internal/dist.
var (
	BuildBFSTree                = dist.BuildBFSTree
	Construct                   = dist.Construct
	NewPARouting                = dist.NewPARouting
	PartwiseAggregate           = dist.PartwiseAggregate
	PartwiseBroadcast           = dist.PartwiseBroadcast
	MST                         = dist.MST
	MinCut                      = dist.MinCut
	OneRespectingCuts           = dist.OneRespectingCuts
	SubgraphComponents          = dist.SubgraphComponents
	SubgraphFromEdgeIDs         = dist.SubgraphFromEdgeIDs
	Bridges                     = dist.Bridges
	ReferenceSubgraphComponents = dist.ReferenceSubgraphComponents
	SameComponents              = dist.SameComponents
)

// Aggregation operators and construction variants.
const (
	OpSum = dist.OpSum
	OpMin = dist.OpMin
	OpMax = dist.OpMax

	VariantRandomized    = dist.Randomized
	VariantDeterministic = dist.Deterministic

	ProviderDistributed     = dist.ProviderDistributed
	ProviderCentral         = dist.ProviderCentral
	ProviderCentralAdaptive = dist.ProviderCentralAdaptive
	ProviderTrivial         = dist.ProviderTrivial
)

// Serving layer: the concurrent shortcut-serving engine with its
// content-addressed cache (see internal/service and cmd/locshortd).
type (
	// ServiceEngine caches and concurrently serves shortcut constructions.
	ServiceEngine = service.Engine
	// ServiceConfig tunes the engine's worker pool and cache.
	ServiceConfig = service.Config
	// ServiceStats is an atomic snapshot of the engine counters.
	ServiceStats = service.Stats
	// Fingerprint is a stable 64-bit content address for graphs,
	// partitions, and built shortcuts.
	Fingerprint = service.Fingerprint
	// CachedShortcut is a resident built shortcut with memoized quality
	// and aggregation routing.
	CachedShortcut = service.Cached
	// Service request types for the engine's job methods.
	ServiceBuildRequest     = service.BuildRequest
	ServiceMSTRequest       = service.MSTRequest
	ServiceMinCutRequest    = service.MinCutRequest
	ServiceAggregateRequest = service.AggregateRequest
)

// Serving-layer entry points re-exported from internal/service.
var (
	NewServiceEngine     = service.New
	FingerprintGraph     = service.FingerprintGraph
	FingerprintPartition = service.FingerprintPartition
	ShortcutKey          = service.ShortcutKey
	ParseFingerprint     = service.ParseFingerprint
)

// Serving-layer sentinel errors.
var (
	ErrServiceClosed   = service.ErrClosed
	ErrUnknownGraph    = service.ErrUnknownGraph
	ErrUnknownShortcut = service.ErrUnknownShortcut
)

// Durable persistence (see internal/store and DESIGN.md §6): a
// content-addressed, append-only snapshot store for graphs, partitions,
// and built shortcuts. Plug a DurableStore into ServiceConfig.Store and
// the engine persists builds, serves cache misses store-first, and
// warm-starts its graph catalog across restarts.
type (
	// ServiceStore is the persistence interface the engine accepts.
	ServiceStore = service.Store
	// DurableStore is the on-disk segment-log implementation.
	DurableStore = store.Store
	// StoreOptions tunes segment size and fsync behavior.
	StoreOptions = store.Options
)

// OpenStore opens (creating if necessary) a durable store directory.
var OpenStore = store.Open
